package clvstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

const (
	testCLVLen   = 24
	testScaleLen = 6
)

// fillRecord generates a deterministic record for index idx, exercising
// negative, denormal, and non-finite float64 payloads so the file codec's
// bit-exactness is part of every roundtrip check.
func fillRecord(idx int, clv []float64, scale []int32) {
	for i := range clv {
		switch (idx + i) % 5 {
		case 0:
			clv[i] = float64(idx*1000 + i)
		case 1:
			clv[i] = -1e-300 * float64(idx+1)
		case 2:
			clv[i] = math.Inf(1)
		case 3:
			clv[i] = 5e-324 // smallest denormal
		default:
			clv[i] = 1.0 / float64(idx+i+1)
		}
	}
	for i := range scale {
		scale[i] = int32(idx*7 - i)
	}
}

func recordsEqual(aCLV, bCLV []float64, aScale, bScale []int32) bool {
	for i := range aCLV {
		if math.Float64bits(aCLV[i]) != math.Float64bits(bCLV[i]) {
			return false
		}
	}
	for i := range aScale {
		if aScale[i] != bScale[i] {
			return false
		}
	}
	return true
}

func stores(t *testing.T, n int) map[string]Store {
	t.Helper()
	fs, err := NewFileStore("", n, testCLVLen, testScaleLen)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]Store{
		"mem":  NewMemStore(n, testCLVLen, testScaleLen),
		"file": fs,
	}
}

func TestRoundTrip(t *testing.T) {
	const n = 17
	for name, s := range stores(t, n) {
		clv := make([]float64, testCLVLen)
		scale := make([]int32, testScaleLen)
		for idx := 0; idx < n; idx++ {
			fillRecord(idx, clv, scale)
			if err := s.Write(idx, clv, scale); err != nil {
				t.Fatalf("%s: Write(%d): %v", name, idx, err)
			}
		}
		gotCLV := make([]float64, testCLVLen)
		gotScale := make([]int32, testScaleLen)
		for idx := n - 1; idx >= 0; idx-- {
			fillRecord(idx, clv, scale)
			if err := s.Read(idx, gotCLV, gotScale); err != nil {
				t.Fatalf("%s: Read(%d): %v", name, idx, err)
			}
			if !recordsEqual(clv, gotCLV, scale, gotScale) {
				t.Fatalf("%s: record %d not bit-identical after roundtrip", name, idx)
			}
		}
	}
}

// TestBoundsValidation: out-of-range indices and mis-sized slices must be
// rejected with the typed errors on every store and both directions —
// before this existed, a bad index silently corrupted the neighboring record.
func TestBoundsValidation(t *testing.T) {
	const n = 4
	okCLV := make([]float64, testCLVLen)
	okScale := make([]int32, testScaleLen)
	for name, s := range stores(t, n) {
		for _, idx := range []int{-1, n, n + 100} {
			if err := s.Write(idx, okCLV, okScale); !errors.Is(err, ErrIndexRange) {
				t.Fatalf("%s: Write(%d) error = %v, want ErrIndexRange", name, idx, err)
			}
			if err := s.Read(idx, okCLV, okScale); !errors.Is(err, ErrIndexRange) {
				t.Fatalf("%s: Read(%d) error = %v, want ErrIndexRange", name, idx, err)
			}
		}
		bad := []struct {
			label string
			clv   []float64
			scale []int32
		}{
			{"short clv", okCLV[:testCLVLen-1], okScale},
			{"long clv", make([]float64, testCLVLen+1), okScale},
			{"short scale", okCLV, okScale[:testScaleLen-1]},
			{"nil clv", nil, okScale},
		}
		for _, b := range bad {
			if err := s.Write(0, b.clv, b.scale); !errors.Is(err, ErrRecordSize) {
				t.Fatalf("%s: Write with %s: error = %v, want ErrRecordSize", name, b.label, err)
			}
			if err := s.Read(0, b.clv, b.scale); !errors.Is(err, ErrRecordSize) {
				t.Fatalf("%s: Read with %s: error = %v, want ErrRecordSize", name, b.label, err)
			}
		}
	}
}

// TestConcurrentAccess hammers one store with parallel readers over records
// written up front plus parallel writers on a disjoint index range. Run
// under -race this is the regression test for the shared-buffer FileStore
// bug: with one shared buf, concurrent Reads corrupt each other's payloads
// (and race); with per-call buffers every reader must see bit-exact data.
func TestConcurrentAccess(t *testing.T) {
	const (
		n        = 64
		nReaders = 8
		nWriters = 4
		rounds   = 50
	)
	for name, s := range stores(t, n) {
		clv := make([]float64, testCLVLen)
		scale := make([]int32, testScaleLen)
		for idx := 0; idx < n/2; idx++ {
			fillRecord(idx, clv, scale)
			if err := s.Write(idx, clv, scale); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		errc := make(chan error, nReaders+nWriters)
		for r := 0; r < nReaders; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				want := make([]float64, testCLVLen)
				wantScale := make([]int32, testScaleLen)
				got := make([]float64, testCLVLen)
				gotScale := make([]int32, testScaleLen)
				for round := 0; round < rounds; round++ {
					for idx := 0; idx < n/2; idx++ {
						if err := s.Read(idx, got, gotScale); err != nil {
							errc <- err
							return
						}
						fillRecord(idx, want, wantScale)
						if !recordsEqual(want, got, wantScale, gotScale) {
							t.Errorf("%s: reader %d saw corrupt record %d", name, r, idx)
							return
						}
					}
				}
			}(r)
		}
		// Writers churn the upper half of the index space, never touching
		// what the readers verify.
		for w := 0; w < nWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				clv := make([]float64, testCLVLen)
				scale := make([]int32, testScaleLen)
				for round := 0; round < rounds; round++ {
					for idx := n/2 + w; idx < n; idx += nWriters {
						fillRecord(idx+round, clv, scale)
						if err := s.Write(idx, clv, scale); err != nil {
							errc <- err
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFileStoreTempCleanup(t *testing.T) {
	s, err := NewFileStore("", 3, testCLVLen, testScaleLen)
	if err != nil {
		t.Fatal(err)
	}
	path := s.Path()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("backing file missing: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("temp file not removed on Close: %v", err)
	}
}

// TestFileStoreSizingFailureRemovesTemp forces the Truncate in NewFileStore
// to fail (the requested size overflows int64 and goes negative) and asserts
// the temporary file does not leak — the bug was closing the file but
// leaving it on disk.
func TestFileStoreSizingFailureRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("TMPDIR", dir)
	_, err := NewFileStore("", 1<<30, 1<<30, 0)
	if err == nil {
		t.Fatal("overflowing store size accepted")
	}
	left, globErr := filepath.Glob(filepath.Join(dir, "clvstore-*"))
	if globErr != nil {
		t.Fatal(globErr)
	}
	if len(left) != 0 {
		t.Fatalf("temp files leaked after failed construction: %v", left)
	}
}

func TestFileStoreExplicitPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clvs.bin")
	s, err := NewFileStore(path, 2, testCLVLen, testScaleLen)
	if err != nil {
		t.Fatal(err)
	}
	if s.Path() != path {
		t.Fatalf("Path() = %q, want %q", s.Path(), path)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("explicit-path file should survive Close: %v", err)
	}
}

func TestBytesAccounting(t *testing.T) {
	m := NewMemStore(3, testCLVLen, testScaleLen)
	want := int64(3*testCLVLen)*8 + int64(3*testScaleLen)*4
	if got := m.Bytes(); got != want {
		t.Fatalf("MemStore.Bytes = %d, want %d", got, want)
	}
	f, err := NewFileStore("", 3, testCLVLen, testScaleLen)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec := int64(testCLVLen)*8 + int64(testScaleLen)*4
	if got := f.RecordBytes(); got != rec {
		t.Fatalf("RecordBytes = %d, want %d", got, rec)
	}
	// Before any access the footprint is one steady-state buffer; sequential
	// use must not inflate it.
	if got := f.Bytes(); got != rec {
		t.Fatalf("idle FileStore.Bytes = %d, want %d", got, rec)
	}
	clv := make([]float64, testCLVLen)
	scale := make([]int32, testScaleLen)
	for i := 0; i < 3; i++ {
		if err := f.Write(i, clv, scale); err != nil {
			t.Fatal(err)
		}
		if err := f.Read(i, clv, scale); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Bytes(); got != rec {
		t.Fatalf("sequential FileStore.Bytes = %d, want %d", got, rec)
	}
}
