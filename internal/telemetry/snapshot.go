package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
)

// Snapshot is the JSON-marshalable view of a Sink, the telemetry section of
// every --stats-json report. All keys are always present (no omitempty):
// the determinism CI gate diffs the key schema across thread counts, so a
// field must not appear or vanish depending on configuration. Counter
// values may legitimately differ across runs; the key set must not.
type Snapshot struct {
	AMC      AMCSnapshot      `json:"amc"`
	Pool     PoolSnapshot     `json:"pool"`
	Pipeline PipelineSnapshot `json:"pipeline"`
	Server   ServerSnapshot   `json:"server"`
	Dedup    DedupSnapshot    `json:"dedup"`
	Kernel   KernelSnapshot   `json:"kernel"`
	Spill    SpillSnapshot    `json:"spill"`
	Scoring  ScoringSnapshot  `json:"scoring"`
}

// AMCSnapshot is the slot manager section of a Snapshot.
type AMCSnapshot struct {
	Hits              uint64 `json:"hits"`
	Misses            uint64 `json:"misses"`
	Evictions         uint64 `json:"evictions"`
	RecomputeLeafWork uint64 `json:"recompute_leaf_work"`
	PinHighWater      int64  `json:"pin_high_water"`
}

// MissRate returns Misses / (Hits + Misses), or 0 with no accesses.
func (a AMCSnapshot) MissRate() float64 {
	total := a.Hits + a.Misses
	if total == 0 {
		return 0
	}
	return float64(a.Misses) / float64(total)
}

// WorkerSnapshot is one pool participant's section of a Snapshot.
type WorkerSnapshot struct {
	ID     int    `json:"id"`
	Chunks uint64 `json:"chunks"`
	Jobs   uint64 `json:"jobs"`
	BusyNS int64  `json:"busy_ns"`
}

// PoolSnapshot is the worker pool section of a Snapshot.
type PoolSnapshot struct {
	JobsSubmitted uint64           `json:"jobs_submitted"`
	Workers       []WorkerSnapshot `json:"workers"`
}

// HistogramSnapshot is the rendered form of a Histogram. Bucket i counts
// observations with floor(d in µs) in [2^(i-1), 2^i); bucket 0 is
// sub-microsecond; the last bucket absorbs the tail.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	MaxNS   int64    `json:"max_ns"`
	Buckets []uint64 `json:"buckets"`
}

// PipelineSnapshot is the streaming pipeline section of a Snapshot.
type PipelineSnapshot struct {
	ChunksRead        uint64            `json:"chunks_read"`
	ChunksPlaced      uint64            `json:"chunks_placed"`
	ChunksEmitted     uint64            `json:"chunks_emitted"`
	QueriesRead       uint64            `json:"queries_read"`
	ReadBusyNS        int64             `json:"read_busy_ns"`
	PlaceBusyNS       int64             `json:"place_busy_ns"`
	EmitBusyNS        int64             `json:"emit_busy_ns"`
	PlaceWaitNS       int64             `json:"place_wait_ns"`
	LookupBuildNS     int64             `json:"lookup_build_ns"`
	PrefetchHighWater int64             `json:"prefetch_high_water"`
	PlaceLatency      HistogramSnapshot `json:"place_latency"`
}

// ServerSnapshot is the placement-service section of a Snapshot: request
// admission, 429 backpressure, and micro-batch coalescing. All-zero for CLI
// runs (the key set is schema-stable regardless of how the sink was used).
type ServerSnapshot struct {
	Requests        uint64            `json:"requests"`
	Rejected        uint64            `json:"rejected"`
	QueriesReceived uint64            `json:"queries_received"`
	Batches         uint64            `json:"batches"`
	BatchedRequests uint64            `json:"batched_requests"`
	BatchedQueries  uint64            `json:"batched_queries"`
	RequestLatency  HistogramSnapshot `json:"request_latency"`
	BatchLatency    HistogramSnapshot `json:"batch_latency"`
}

// DedupSnapshot is the redundancy-elimination section of a Snapshot:
// in-flight query dedup plus the content-addressed result cache. All-zero
// when dedup is disabled or no cache is configured (the key set is
// schema-stable regardless).
type DedupSnapshot struct {
	QueriesSeen      uint64 `json:"queries_seen"`
	QueriesDistinct  uint64 `json:"queries_distinct"`
	DuplicatesFolded uint64 `json:"duplicates_folded"`
	CacheHits        uint64 `json:"cache_hits"`
	CacheMisses      uint64 `json:"cache_misses"`
	CacheInserts     uint64 `json:"cache_inserts"`
	CacheEvictions   uint64 `json:"cache_evictions"`
	CachedBytes      int64  `json:"cached_bytes"`
	CachedEntries    int64  `json:"cached_entries"`
}

// DedupRatio returns QueriesSeen / QueriesDistinct, or 0 with no queries:
// the average number of requesters each placed representative served.
func (d DedupSnapshot) DedupRatio() float64 {
	if d.QueriesDistinct == 0 {
		return 0
	}
	return float64(d.QueriesSeen) / float64(d.QueriesDistinct)
}

// CacheHitRate returns CacheHits / (CacheHits + CacheMisses), or 0 with no
// lookups.
func (d DedupSnapshot) CacheHitRate() float64 {
	total := d.CacheHits + d.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(d.CacheHits) / float64(total)
}

// KernelSnapshot is the tiled placement-kernel section of a Snapshot: the
// resolved tile dimensions, whether fast-math reordering was on, and the
// tile/call/resident-bytes activity of phase 1. All-zero when the engine
// placed no queries (the key set is schema-stable regardless).
type KernelSnapshot struct {
	TileQueries        int64  `json:"tile_queries"`
	TileBranches       int64  `json:"tile_branches"`
	FastMath           int64  `json:"fast_math"`
	TilesExecuted      uint64 `json:"tiles_executed"`
	BlockKernelCalls   uint64 `json:"block_kernel_calls"`
	BlockResidentBytes int64  `json:"block_resident_bytes"`
}

// SpillSnapshot is the tiered CLV-eviction section of a Snapshot: records
// spilled to the disk tier, materializations satisfied by reload instead of
// recomputation (with the leaf work those reloads saved), degraded-around
// I/O errors, and the measured byte/time volumes the hybrid policy's
// bandwidth estimate is made of. All-zero when spill is disabled (the key
// set is schema-stable regardless).
type SpillSnapshot struct {
	Writes              uint64 `json:"writes"`
	Reloads             uint64 `json:"reloads"`
	Errors              uint64 `json:"errors"`
	BytesWritten        uint64 `json:"bytes_written"`
	BytesReloaded       uint64 `json:"bytes_reloaded"`
	ReloadLeafWorkSaved uint64 `json:"reload_leaf_work_saved"`
	WriteNS             int64  `json:"write_ns"`
	ReloadNS            int64  `json:"reload_ns"`
	SpilledEntries      int64  `json:"spilled_entries"`
}

// ScoringSnapshot is the uncertainty-aware scoring section of a Snapshot:
// the configured mode and quadrature orders, the posterior integration
// path's activity, and the per-query EDPL computations. All-zero for plain
// ML runs without EDPL (the key set is schema-stable regardless).
type ScoringSnapshot struct {
	BayesMode            int64  `json:"bayes_mode"`
	PendantNodes         int64  `json:"pendant_nodes"`
	ProximalNodes        int64  `json:"proximal_nodes"`
	EDPLEnabled          int64  `json:"edpl_enabled"`
	CandidatesIntegrated uint64 `json:"candidates_integrated"`
	QuadEvals            uint64 `json:"quad_evals"`
	IntegrateNS          int64  `json:"integrate_ns"`
	EDPLQueries          uint64 `json:"edpl_queries"`
	EDPLNS               int64  `json:"edpl_ns"`
}

// FleetSnapshot is the JSON-marshalable view of a Fleet group, the
// registry-level section of the placed /metrics document. Like Snapshot,
// every key is always present so the CI schema diff holds across fleet
// configurations.
type FleetSnapshot struct {
	EnginesBuilt   uint64 `json:"engines_built"`
	EnginesShrunk  uint64 `json:"engines_shrunk"`
	EnginesDemoted uint64 `json:"engines_demoted"`
	EnginesEvicted uint64 `json:"engines_evicted"`
	BuildRejected  uint64 `json:"build_rejected"`
	BytesReclaimed uint64 `json:"bytes_reclaimed"`
	TenantsWarm    int64  `json:"tenants_warm"`
}

// Snapshot renders the fleet group's current values. A nil group yields the
// zero snapshot.
func (f *Fleet) Snapshot() FleetSnapshot {
	if f == nil {
		return FleetSnapshot{}
	}
	return FleetSnapshot{
		EnginesBuilt:   f.EnginesBuilt.Load(),
		EnginesShrunk:  f.EnginesShrunk.Load(),
		EnginesDemoted: f.EnginesDemoted.Load(),
		EnginesEvicted: f.EnginesEvicted.Load(),
		BuildRejected:  f.BuildRejected.Load(),
		BytesReclaimed: f.BytesReclaimed.Load(),
		TenantsWarm:    f.TenantsWarm.Load(),
	}
}

// Snapshot renders the sink's current counter values. Safe to call while
// the run is still mutating the sink; the values are then advisory. A nil
// sink yields the zero snapshot (with an empty worker list).
func (s *Sink) Snapshot() Snapshot {
	var out Snapshot
	out.Pool.Workers = []WorkerSnapshot{}
	out.Pipeline.PlaceLatency.Buckets = make([]uint64, HistBuckets)
	out.Server.RequestLatency.Buckets = make([]uint64, HistBuckets)
	out.Server.BatchLatency.Buckets = make([]uint64, HistBuckets)
	if s == nil {
		return out
	}
	out.AMC = AMCSnapshot{
		Hits:              s.AMC.Hits.Load(),
		Misses:            s.AMC.Misses.Load(),
		Evictions:         s.AMC.Evictions.Load(),
		RecomputeLeafWork: s.AMC.RecomputeLeafWork.Load(),
		PinHighWater:      s.AMC.PinHighWater.Load(),
	}
	out.Pool.JobsSubmitted = s.Pool.JobsSubmitted.Load()
	for i := range s.Pool.Workers {
		w := &s.Pool.Workers[i]
		out.Pool.Workers = append(out.Pool.Workers, WorkerSnapshot{
			ID:     i,
			Chunks: w.Chunks.Load(),
			Jobs:   w.Jobs.Load(),
			BusyNS: int64(w.Busy.Load()),
		})
	}
	p := &s.Pipeline
	out.Pipeline = PipelineSnapshot{
		ChunksRead:        p.ChunksRead.Load(),
		ChunksPlaced:      p.ChunksPlaced.Load(),
		ChunksEmitted:     p.ChunksEmitted.Load(),
		QueriesRead:       p.QueriesRead.Load(),
		ReadBusyNS:        int64(p.ReadBusy.Load()),
		PlaceBusyNS:       int64(p.PlaceBusy.Load()),
		EmitBusyNS:        int64(p.EmitBusy.Load()),
		PlaceWaitNS:       int64(p.PlaceWait.Load()),
		LookupBuildNS:     int64(p.LookupBuild.Load()),
		PrefetchHighWater: p.PrefetchHighWater.Load(),
		PlaceLatency:      p.PlaceLatency.snapshot(),
	}
	sv := &s.Server
	out.Server = ServerSnapshot{
		Requests:        sv.Requests.Load(),
		Rejected:        sv.Rejected.Load(),
		QueriesReceived: sv.QueriesReceived.Load(),
		Batches:         sv.Batches.Load(),
		BatchedRequests: sv.BatchedRequests.Load(),
		BatchedQueries:  sv.BatchedQueries.Load(),
		RequestLatency:  sv.RequestLatency.snapshot(),
		BatchLatency:    sv.BatchLatency.snapshot(),
	}
	d := &s.Dedup
	out.Dedup = DedupSnapshot{
		QueriesSeen:      d.QueriesSeen.Load(),
		QueriesDistinct:  d.QueriesDistinct.Load(),
		DuplicatesFolded: d.DuplicatesFolded.Load(),
		CacheHits:        d.CacheHits.Load(),
		CacheMisses:      d.CacheMisses.Load(),
		CacheInserts:     d.CacheInserts.Load(),
		CacheEvictions:   d.CacheEvictions.Load(),
		CachedBytes:      d.CachedBytes.Load(),
		CachedEntries:    d.CachedEntries.Load(),
	}
	k := &s.Kernel
	out.Kernel = KernelSnapshot{
		TileQueries:        k.TileQueries.Load(),
		TileBranches:       k.TileBranches.Load(),
		FastMath:           k.FastMath.Load(),
		TilesExecuted:      k.TilesExecuted.Load(),
		BlockKernelCalls:   k.BlockKernelCalls.Load(),
		BlockResidentBytes: k.BlockResidentBytes.Load(),
	}
	sp := &s.Spill
	out.Spill = SpillSnapshot{
		Writes:              sp.Writes.Load(),
		Reloads:             sp.Reloads.Load(),
		Errors:              sp.Errors.Load(),
		BytesWritten:        sp.BytesWritten.Load(),
		BytesReloaded:       sp.BytesReloaded.Load(),
		ReloadLeafWorkSaved: sp.ReloadLeafWorkSaved.Load(),
		WriteNS:             int64(sp.WriteTime.Load()),
		ReloadNS:            int64(sp.ReloadTime.Load()),
		SpilledEntries:      sp.SpilledEntries.Load(),
	}
	sc := &s.Scoring
	out.Scoring = ScoringSnapshot{
		BayesMode:            sc.BayesMode.Load(),
		PendantNodes:         sc.PendantNodes.Load(),
		ProximalNodes:        sc.ProximalNodes.Load(),
		EDPLEnabled:          sc.EDPLEnabled.Load(),
		CandidatesIntegrated: sc.CandidatesIntegrated.Load(),
		QuadEvals:            sc.QuadEvals.Load(),
		IntegrateNS:          int64(sc.IntegrateTime.Load()),
		EDPLQueries:          sc.EDPLQueries.Load(),
		EDPLNS:               int64(sc.EDPLTime.Load()),
	}
	return out
}

// WriteJSONFile marshals v with indentation and writes it atomically enough
// for CI consumption (full write + close before rename is overkill here; a
// stats file is written once at end of run).
func WriteJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal %s: %w", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}
