package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterTimerGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d, want 42", c.Load())
	}
	var g MaxGauge
	for _, v := range []int64{3, 7, 5, 7, 1} {
		g.Observe(v)
	}
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
	var tm Timer
	tm.Add(time.Millisecond)
	tm.Add(time.Millisecond)
	if tm.Load() != 2*time.Millisecond {
		t.Fatalf("timer = %v", tm.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(time.Microsecond)      // 1µs → bucket 1
	h.Observe(3 * time.Microsecond)  // 3µs → bucket 2
	h.Observe(time.Second)           // 1e6 µs → bucket 20
	h.Observe(-time.Second)          // clamped to 0 → bucket 0
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MaxNS != int64(time.Second) {
		t.Fatalf("max = %d", s.MaxNS)
	}
	want := map[int]uint64{0: 2, 1: 1, 2: 1, 20: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	// The tail bucket absorbs absurd durations instead of panicking.
	h.Observe(100 * time.Hour)
	if got := h.snapshot().Buckets[HistBuckets-1]; got != 1 {
		t.Fatalf("tail bucket = %d", got)
	}
}

// TestNilGroupsAreFreeAndZero is the disabled-telemetry guard: every group
// method on a nil receiver must be a no-op with zero allocations, so hot
// paths can call them unconditionally.
func TestNilGroupsAreFreeAndZero(t *testing.T) {
	var (
		amc  *AMC
		pool *Pool
		pipe *Pipeline
		tr   *Trace
		sink *Sink
	)
	allocs := testing.AllocsPerRun(200, func() {
		amc.Hit()
		amc.Recompute(17)
		amc.Evict()
		amc.ObservePinned(3)
		pool.JobStart()
		pool.Worker(2).Chunk()
		pool.Worker(2).Job()
		pool.Worker(2).AddBusy(time.Millisecond)
		pipe.ChunkRead(10, time.Millisecond)
		pipe.ChunkPlaced(time.Millisecond)
		pipe.ChunkEmitted(time.Millisecond)
		pipe.AddPlaceWait(time.Millisecond)
		pipe.AddLookupBuild(time.Millisecond)
		pipe.PrefetchInc()
		pipe.PrefetchDec()
		tr.Emit(Event{Ev: "x"})
	})
	if allocs != 0 {
		t.Fatalf("nil-sink telemetry allocated %v per run, want 0", allocs)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.AMCGroup() != nil || sink.PoolGroup() != nil || sink.PipelineGroup() != nil {
		t.Fatal("nil sink returned non-nil groups")
	}
	snap := sink.Snapshot()
	if snap.AMC.Hits != 0 || snap.Pipeline.ChunksPlaced != 0 || len(snap.Pool.Workers) != 0 {
		t.Fatalf("nil sink snapshot not zero: %+v", snap)
	}
}

// TestEnabledGroupsAllocFree checks that recording into a live sink is also
// allocation-free: the counters are plain atomics, so enabling telemetry
// must not put allocations on the hot path either.
func TestEnabledGroupsAllocFree(t *testing.T) {
	sink := NewSink()
	sink.Pool.Init(4)
	amc, pool, pipe := sink.AMCGroup(), sink.PoolGroup(), sink.PipelineGroup()
	allocs := testing.AllocsPerRun(200, func() {
		amc.Hit()
		amc.Recompute(17)
		amc.Evict()
		amc.ObservePinned(3)
		pool.JobStart()
		pool.Worker(2).Chunk()
		pool.Worker(2).AddBusy(time.Millisecond)
		pipe.ChunkRead(10, time.Millisecond)
		pipe.ChunkPlaced(time.Millisecond)
		pipe.ChunkEmitted(time.Millisecond)
		pipe.PrefetchInc()
		pipe.PrefetchDec()
	})
	if allocs != 0 {
		t.Fatalf("enabled telemetry allocated %v per run, want 0", allocs)
	}
}

// TestConcurrentUpdates hammers one sink from many goroutines; run under
// -race this is the data-race guard, and the totals must be exact.
func TestConcurrentUpdates(t *testing.T) {
	sink := NewSink()
	sink.Pool.Init(8)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := sink.PoolGroup().Worker(id)
			for i := 0; i < per; i++ {
				sink.AMCGroup().Hit()
				sink.AMCGroup().Recompute(2)
				sink.AMCGroup().ObservePinned(id)
				w.Chunk()
				w.AddBusy(time.Nanosecond)
				sink.PipelineGroup().ChunkPlaced(time.Microsecond)
				sink.PipelineGroup().PrefetchInc()
				sink.PipelineGroup().PrefetchDec()
			}
		}(g)
	}
	wg.Wait()
	s := sink.Snapshot()
	if s.AMC.Hits != goroutines*per || s.AMC.Misses != goroutines*per {
		t.Fatalf("hits=%d misses=%d, want %d each", s.AMC.Hits, s.AMC.Misses, goroutines*per)
	}
	if s.AMC.RecomputeLeafWork != 2*goroutines*per {
		t.Fatalf("leaf work = %d", s.AMC.RecomputeLeafWork)
	}
	if s.AMC.PinHighWater != goroutines-1 {
		t.Fatalf("pin high-water = %d, want %d", s.AMC.PinHighWater, goroutines-1)
	}
	if s.Pipeline.PlaceLatency.Count != goroutines*per {
		t.Fatalf("latency count = %d", s.Pipeline.PlaceLatency.Count)
	}
	for _, w := range s.Pool.Workers {
		if w.Chunks != per {
			t.Fatalf("worker %d chunks = %d, want %d", w.ID, w.Chunks, per)
		}
	}
}

// TestSnapshotSchemaStable marshals snapshots from differently configured
// sinks and checks the key schema is identical — the property the CI
// determinism gate relies on.
func TestSnapshotSchemaStable(t *testing.T) {
	shape := func(s Snapshot) string {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		var walk func(v any) string
		walk = func(v any) string {
			switch x := v.(type) {
			case map[string]any:
				keys := make([]string, 0, len(x))
				for k := range x {
					keys = append(keys, k+":"+walk(x[k]))
				}
				// Deterministic order.
				for i := range keys {
					for j := i + 1; j < len(keys); j++ {
						if keys[j] < keys[i] {
							keys[i], keys[j] = keys[j], keys[i]
						}
					}
				}
				return "{" + strings.Join(keys, ",") + "}"
			case []any:
				if len(x) == 0 {
					return "[]"
				}
				return "[" + walk(x[0]) + "]"
			default:
				return "v"
			}
		}
		return walk(v)
	}

	// A nil sink's snapshot must at least marshal cleanly (it is never
	// written to a stats file — the CLIs initialize a sink whenever
	// --stats-json is given — but Snapshot() must not panic on it).
	if _, err := json.Marshal((*Sink)(nil).Snapshot()); err != nil {
		t.Fatal(err)
	}

	small := NewSink()
	small.Pool.Init(2) // threads=1: one worker + the submitter's helper id
	small.AMCGroup().Hit()
	big := NewSink()
	big.Pool.Init(9) // threads=8
	big.PipelineGroup().ChunkPlaced(time.Millisecond)
	// Kernel activity (tiled engine) versus an untouched kernel group must
	// not change the key set either.
	big.KernelGroup().Configure(32, 64, true)
	big.KernelGroup().TileDone(64, 1<<20)

	b, c := shape(small.Snapshot()), shape(big.Snapshot())
	if b != c {
		t.Fatalf("snapshot schema varies across worker counts:\n 2w: %s\n 9w: %s", b, c)
	}

	ks := big.Snapshot().Kernel
	if ks.TileQueries != 32 || ks.TileBranches != 64 || ks.FastMath != 1 ||
		ks.TilesExecuted != 1 || ks.BlockKernelCalls != 64 || ks.BlockResidentBytes != 1<<20 {
		t.Fatalf("kernel snapshot mismatch: %+v", ks)
	}
	// Nil-receiver safety for the hot-path methods.
	(*Kernel)(nil).Configure(1, 1, false)
	(*Kernel)(nil).TileDone(1, 1)
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Emit(Event{Ev: "run_start", Detail: "test"})
	tr.Emit(Event{Ev: "chunk_place", Chunk: 1, Queries: 42, DurNS: 1000})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace has %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Ev != "chunk_place" || ev.Chunk != 1 || ev.Queries != 42 || ev.DurNS != 1000 {
		t.Fatalf("event round-trip mismatch: %+v", ev)
	}
	if ev.TS < 0 {
		t.Fatalf("timestamp %d negative", ev.TS)
	}
	// Emit after Close is dropped, not a crash.
	tr.Emit(Event{Ev: "late"})
}

func TestMissRate(t *testing.T) {
	if r := (AMCSnapshot{}).MissRate(); r != 0 {
		t.Fatalf("empty miss rate = %v", r)
	}
	if r := (AMCSnapshot{Hits: 3, Misses: 1}).MissRate(); r != 0.25 {
		t.Fatalf("miss rate = %v, want 0.25", r)
	}
}
