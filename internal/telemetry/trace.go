package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"sync"
	"time"
)

// Event is one trace record. The trace file is newline-delimited JSON, one
// event per line, timestamps relative to the trace's start — the format
// cmd/placestats --trace consumes for post-hoc timeline analysis. Unlike
// the counter sink, tracing is not free (one JSON encode + buffered write
// per event); it is opt-in per run and events are per-chunk, not per-query,
// so the cost stays far off the inner hot paths.
type Event struct {
	TS      int64  `json:"ts_ns"`             // nanoseconds since trace start
	Ev      string `json:"ev"`                // event kind, e.g. "chunk_place"
	Chunk   int    `json:"chunk,omitempty"`   // chunk ordinal (1-based), if chunk-scoped
	Queries int    `json:"queries,omitempty"` // queries in the chunk
	DurNS   int64  `json:"dur_ns,omitempty"`  // event duration
	Bytes   int64  `json:"bytes,omitempty"`   // bytes touched, if byte-scoped
	Detail  string `json:"detail,omitempty"`  // free-form annotation
}

// Trace serializes events to a writer. All methods are safe for concurrent
// use (the pipeline's reader, placer, and emitter goroutines all emit) and
// nil-receiver-safe, so instrumented code traces unconditionally. The first
// write error is sticky and reported by Close; later events are dropped.
type Trace struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	start time.Time
	err   error
}

// NewTrace starts a trace over w. If w is also an io.Closer, Close closes
// it after flushing.
func NewTrace(w io.Writer) *Trace {
	t := &Trace{w: bufio.NewWriter(w), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Emit writes one event, stamping TS from the trace's monotonic start.
func (t *Trace) Emit(ev Event) {
	if t == nil {
		return
	}
	ts := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	ev.TS = ts
	data, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(data, '\n')); err != nil {
		t.err = err
	}
}

// Close flushes and closes the underlying writer, returning the first error
// encountered over the trace's lifetime. Nil-safe and idempotent.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var errs []error
	if t.err != nil {
		errs = append(errs, t.err)
	}
	if t.w != nil {
		if err := t.w.Flush(); err != nil {
			errs = append(errs, err)
		}
		t.w = bufio.NewWriter(io.Discard) // later emits go nowhere
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil {
			errs = append(errs, err)
		}
		t.c = nil
	}
	return errors.Join(errs...)
}
