// Package telemetry is the observability layer: cheap atomic counters,
// monotonic timers, and fixed-bucket latency histograms that the hot paths
// update behind a nil check. The paper's central claim is a measurable
// memory↔runtime trade-off (slot-pool size versus recomputation, lookup
// memoization, chunked streaming); this package exposes the quantities that
// trade-off is made of — slot hits/misses/evictions, pin dwell, recompute
// work, prefetch occupancy, per-chunk latency — without perturbing the runs
// being measured.
//
// Design notes:
//
//   - Disabled means nil. Every group type (AMC, Pool, Pipeline) has
//     nil-receiver-safe methods, so instrumented code calls m.tel.Hit()
//     unconditionally and a run without telemetry pays one predictable
//     branch per event and zero allocations. Build tags would make the
//     instrumented and uninstrumented binaries diverge; a nil sink keeps
//     one binary and one code path.
//   - All mutation is atomic: subsystems update their groups from pool
//     workers, the pipeline's reader/emitter goroutines, and the placer
//     concurrently. Snapshots are advisory (not cut atomically across
//     counters), which is fine for end-of-run reporting.
//   - Counters measure events; Timers accumulate monotonic wall time;
//     Histograms bucket durations by power-of-two microseconds. None of
//     them allocate after construction.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// SchemaVersion identifies the --stats-json layout. Bump on any key rename
// or removal; additions are backward compatible.
const SchemaVersion = 1

// Counter is an atomic event counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge tracks a current value (a level, not an event count): cached bytes,
// entry counts. Unlike MaxGauge it can go down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// MaxGauge tracks the maximum value ever observed (a high-water mark).
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the gauge to v if v exceeds the current maximum.
func (g *MaxGauge) Observe(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (g *MaxGauge) Load() int64 { return g.v.Load() }

// Timer accumulates elapsed monotonic time.
type Timer struct{ ns atomic.Int64 }

// Add accumulates d.
func (t *Timer) Add(d time.Duration) { t.ns.Add(int64(d)) }

// Load returns the accumulated duration.
func (t *Timer) Load() time.Duration { return time.Duration(t.ns.Load()) }

// HistBuckets is the number of duration histogram buckets. Bucket i counts
// observations with floor(d in µs) in [2^(i-1), 2^i), bucket 0 counts
// sub-microsecond observations, and the last bucket absorbs the tail
// (≥ ~35 minutes) — wide enough for any per-chunk latency.
const HistBuckets = 32

// Histogram buckets durations by power-of-two microseconds and tracks the
// count, sum, and maximum. Observations are lock-free.
type Histogram struct {
	count Counter
	sum   Timer
	max   MaxGauge
	bkt   [HistBuckets]Counter
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Inc()
	h.sum.Add(d)
	h.max.Observe(int64(d))
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.bkt[i].Inc()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the accumulated duration.
func (h *Histogram) Sum() time.Duration { return h.sum.Load() }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// snapshot renders the histogram for JSON reporting.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNS: int64(h.sum.Load()),
		MaxNS: h.max.Load(),
	}
	s.Buckets = make([]uint64, HistBuckets)
	for i := range h.bkt {
		s.Buckets[i] = h.bkt[i].Load()
	}
	return s
}

// AMC counts the slot manager's activity: the Active Management of CLVs is
// where the memory/runtime trade-off is paid, so these are the paper's core
// quantities. Hits + Misses is the total number of inner-CLV materialization
// requests; Misses is the number of recomputations; Evictions ≤ Misses
// (an eviction happens only to make room for a recomputation once the pool
// is full); RecomputeLeafWork is the machine-independent recomputation cost
// (the subtree leaf count summed over recomputed CLVs); PinHighWater is the
// peak number of simultaneously pinned slots (pin dwell), which the
// log2(n)+2 slot guarantee bounds.
type AMC struct {
	Hits              Counter
	Misses            Counter
	Evictions         Counter
	RecomputeLeafWork Counter
	PinHighWater      MaxGauge
}

// Hit records a materialization satisfied by an already-slotted CLV.
func (a *AMC) Hit() {
	if a == nil {
		return
	}
	a.Hits.Inc()
}

// Recompute records a materialization that recomputed the CLV, with the
// subtree leaf count as its work proxy.
func (a *AMC) Recompute(leafWork int) {
	if a == nil {
		return
	}
	a.Misses.Inc()
	a.RecomputeLeafWork.Add(uint64(leafWork))
}

// Evict records a slot eviction.
func (a *AMC) Evict() {
	if a == nil {
		return
	}
	a.Evictions.Inc()
}

// ObservePinned records the current number of pinned slots.
func (a *AMC) ObservePinned(n int) {
	if a == nil {
		return
	}
	a.PinHighWater.Observe(int64(n))
}

// WorkerStats is one pool participant's activity. The trailing pad keeps
// adjacent workers' counters on separate cache lines so telemetry never
// introduces false sharing between workers.
type WorkerStats struct {
	Chunks Counter // work chunks executed
	Jobs   Counter // distinct jobs participated in
	Busy   Timer   // wall time spent executing chunks
	_      [40]byte
}

// Pool counts the shared worker pool's activity per participant. Ids index
// Workers: [0, n-1) are pool goroutines, the last id is the submitting
// goroutine's helper slot, so "chunks claimed by id < workers" versus the
// helper id separates stolen work from submitter participation.
type Pool struct {
	JobsSubmitted Counter
	Workers       []WorkerStats
}

// Init sizes the per-worker slots; call once before handing the group to a
// pool. n is parallel.Pool.Size() (workers + the submitter's helper id).
func (p *Pool) Init(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.Workers = make([]WorkerStats, n)
}

// Worker returns the stats slot for a participant id, or nil when telemetry
// is disabled or the id is out of range (a pool resized after Init).
func (p *Pool) Worker(id int) *WorkerStats {
	if p == nil || id < 0 || id >= len(p.Workers) {
		return nil
	}
	return &p.Workers[id]
}

// JobStart records one Run submission.
func (p *Pool) JobStart() {
	if p == nil {
		return
	}
	p.JobsSubmitted.Inc()
}

// Chunk records one executed chunk for a participant.
func (w *WorkerStats) Chunk() {
	if w == nil {
		return
	}
	w.Chunks.Inc()
}

// Job records one job participation for a participant.
func (w *WorkerStats) Job() {
	if w == nil {
		return
	}
	w.Jobs.Inc()
}

// AddBusy accumulates chunk-execution wall time for a participant.
func (w *WorkerStats) AddBusy(d time.Duration) {
	if w == nil {
		return
	}
	w.Busy.Add(d)
}

// Pipeline counts the chunked streaming pipeline's activity: stage
// occupancy (time each stage spent busy), prefetch depth, and per-chunk
// place latency. The reader, placer, and emitter update it from their own
// goroutines.
type Pipeline struct {
	ChunksRead    Counter
	ChunksPlaced  Counter
	ChunksEmitted Counter
	QueriesRead   Counter

	ReadBusy  Timer // reader stage: decoding + validating chunks
	PlaceBusy Timer // placer stage: inside placeChunk
	EmitBusy  Timer // emitter stage: inside the sink
	PlaceWait Timer // placer idle, waiting for the next chunk

	LookupBuild Timer // wall time of the pre-placement lookup build

	PlaceLatency Histogram // per-chunk place latency

	prefetchNow       atomic.Int64
	PrefetchHighWater MaxGauge
}

// ChunkRead records one decoded chunk of n queries taking d.
func (p *Pipeline) ChunkRead(n int, d time.Duration) {
	if p == nil {
		return
	}
	p.ChunksRead.Inc()
	p.QueriesRead.Add(uint64(n))
	p.ReadBusy.Add(d)
}

// ChunkPlaced records one placed chunk taking d.
func (p *Pipeline) ChunkPlaced(d time.Duration) {
	if p == nil {
		return
	}
	p.ChunksPlaced.Inc()
	p.PlaceBusy.Add(d)
	p.PlaceLatency.Observe(d)
}

// ChunkEmitted records one chunk delivered to the sink taking d.
func (p *Pipeline) ChunkEmitted(d time.Duration) {
	if p == nil {
		return
	}
	p.ChunksEmitted.Inc()
	p.EmitBusy.Add(d)
}

// AddPlaceWait accumulates placer idle time.
func (p *Pipeline) AddPlaceWait(d time.Duration) {
	if p == nil {
		return
	}
	p.PlaceWait.Add(d)
}

// AddLookupBuild accumulates lookup-table build wall time.
func (p *Pipeline) AddLookupBuild(d time.Duration) {
	if p == nil {
		return
	}
	p.LookupBuild.Add(d)
}

// PrefetchInc records one chunk entering the prefetch buffer and updates the
// depth high-water mark.
func (p *Pipeline) PrefetchInc() {
	if p == nil {
		return
	}
	p.PrefetchHighWater.Observe(p.prefetchNow.Add(1))
}

// PrefetchDec records one chunk leaving the prefetch buffer.
func (p *Pipeline) PrefetchDec() {
	if p == nil {
		return
	}
	p.prefetchNow.Add(-1)
}

// Server counts a placement service's request-level activity: admissions,
// 429 backpressure rejections, micro-batch coalescing, and the two latency
// distributions that matter for serving — per-request (admission to
// response, what a client sees) and per-batch (inside the engine, what the
// coalescer amortizes). Handlers and the batcher update it concurrently.
type Server struct {
	Requests        Counter // requests admitted past admission control
	Rejected        Counter // requests refused admission (429 backpressure)
	QueriesReceived Counter // queries across admitted requests
	Batches         Counter // engine flushes
	BatchedRequests Counter // requests coalesced across all flushes
	BatchedQueries  Counter // queries placed across all flushes
	RequestLatency  Histogram
	BatchLatency    Histogram
}

// Admit records one admitted request carrying n queries.
func (s *Server) Admit(n int) {
	if s == nil {
		return
	}
	s.Requests.Inc()
	s.QueriesReceived.Add(uint64(n))
}

// Reject records one request refused admission.
func (s *Server) Reject() {
	if s == nil {
		return
	}
	s.Rejected.Inc()
}

// RequestDone records one admitted request's end-to-end latency.
func (s *Server) RequestDone(d time.Duration) {
	if s == nil {
		return
	}
	s.RequestLatency.Observe(d)
}

// BatchFlush records one engine flush of nQueries coalesced from nRequests.
func (s *Server) BatchFlush(nQueries, nRequests int, d time.Duration) {
	if s == nil {
		return
	}
	s.Batches.Inc()
	s.BatchedRequests.Add(uint64(nRequests))
	s.BatchedQueries.Add(uint64(nQueries))
	s.BatchLatency.Observe(d)
}

// Dedup counts the redundancy-elimination layer's activity, on both levels:
// in-flight dedup (the engine groups each chunk's queries by encoded
// sequence content and places one representative per distinct sequence) and
// the cross-request content-addressed result cache. QueriesSeen −
// QueriesDistinct = DuplicatesFolded is work converted from a full placement
// into a fan-out copy; CacheHits is work converted into an O(1) lookup.
// CachedBytes/CachedEntries are levels (the cache's current accounted
// footprint), not event counts — the cache shrinks under memory pressure, so
// they go down as well as up.
type Dedup struct {
	QueriesSeen      Counter
	QueriesDistinct  Counter
	DuplicatesFolded Counter

	CacheHits      Counter
	CacheMisses    Counter
	CacheInserts   Counter
	CacheEvictions Counter
	CachedBytes    Gauge
	CachedEntries  Gauge
}

// ObserveChunk records one deduped chunk: total queries seen, distinct
// representatives placed.
func (d *Dedup) ObserveChunk(total, distinct int) {
	if d == nil {
		return
	}
	d.QueriesSeen.Add(uint64(total))
	d.QueriesDistinct.Add(uint64(distinct))
	d.DuplicatesFolded.Add(uint64(total - distinct))
}

// CacheHit records one result served from the cache.
func (d *Dedup) CacheHit() {
	if d == nil {
		return
	}
	d.CacheHits.Inc()
}

// CacheMiss records one lookup that fell through to placement.
func (d *Dedup) CacheMiss() {
	if d == nil {
		return
	}
	d.CacheMisses.Inc()
}

// CacheInsert records one result added to the cache.
func (d *Dedup) CacheInsert() {
	if d == nil {
		return
	}
	d.CacheInserts.Inc()
}

// CacheEvict records n entries evicted (capacity or memory pressure).
func (d *Dedup) CacheEvict(n int) {
	if d == nil || n <= 0 {
		return
	}
	d.CacheEvictions.Add(uint64(n))
}

// SetCacheSize records the cache's current accounted footprint.
func (d *Dedup) SetCacheSize(bytes int64, entries int) {
	if d == nil {
		return
	}
	d.CachedBytes.Set(bytes)
	d.CachedEntries.Set(int64(entries))
}

// Kernel counts the tiled phase-1 placement kernels' activity: the resolved
// tile dimensions and fast-math mode (levels, set once at engine
// construction), the number of query-tile × branch-tile tasks executed, the
// number of block-kernel invocations (one per branch per query tile), and the
// high-water mark of the bytes a tile keeps cache-resident (its SoA code
// block, accumulators, and one prescore row or branch CLV).
type Kernel struct {
	TileQueries        Gauge
	TileBranches       Gauge
	FastMath           Gauge // 0 = bit-identical default order, 1 = reordered
	TilesExecuted      Counter
	BlockKernelCalls   Counter
	BlockResidentBytes MaxGauge
}

// Configure records the engine's resolved tile dimensions and fast-math mode.
func (k *Kernel) Configure(tileQ, tileB int, fastMath bool) {
	if k == nil {
		return
	}
	k.TileQueries.Set(int64(tileQ))
	k.TileBranches.Set(int64(tileB))
	if fastMath {
		k.FastMath.Set(1)
	} else {
		k.FastMath.Set(0)
	}
}

// TileDone records one executed tile: its block-kernel call count and its
// cache-resident byte footprint.
func (k *Kernel) TileDone(calls int, residentBytes int64) {
	if k == nil {
		return
	}
	k.TilesExecuted.Inc()
	k.BlockKernelCalls.Add(uint64(calls))
	k.BlockResidentBytes.Observe(residentBytes)
}

// Spill counts the tiered CLV-eviction path's activity: instead of always
// discarding an eviction victim, the slot manager may serialize it into a
// file-backed store and later reload it in place of a full recomputation.
// Writes/Reloads/Errors are events (an error is a failed spill I/O the
// manager degraded around, never a failed run); BytesWritten/BytesReloaded
// and the two timers feed the hybrid policy's measured reload bandwidth;
// SpilledEntries is a level — the number of currently reloadable records;
// ReloadLeafWorkSaved accumulates the subtree leaf count of every reloaded
// CLV, i.e. the recomputation work the disk tier absorbed (the directly
// comparable counterpart of the AMC group's RecomputeLeafWork).
type Spill struct {
	Writes              Counter
	Reloads             Counter
	Errors              Counter
	BytesWritten        Counter
	BytesReloaded       Counter
	ReloadLeafWorkSaved Counter
	WriteTime           Timer
	ReloadTime          Timer
	SpilledEntries      Gauge
}

// Write records one victim record spilled to the store.
func (s *Spill) Write(bytes int64, d time.Duration) {
	if s == nil {
		return
	}
	s.Writes.Inc()
	s.BytesWritten.Add(uint64(bytes))
	s.WriteTime.Add(d)
}

// Reload records one materialization satisfied from the store instead of
// recomputation, with the subtree leaf count the reload saved.
func (s *Spill) Reload(bytes int64, leafWork int, d time.Duration) {
	if s == nil {
		return
	}
	s.Reloads.Inc()
	s.BytesReloaded.Add(uint64(bytes))
	s.ReloadLeafWorkSaved.Add(uint64(leafWork))
	s.ReloadTime.Add(d)
}

// Error records one spill I/O failure the manager degraded around.
func (s *Spill) Error() {
	if s == nil {
		return
	}
	s.Errors.Inc()
}

// SetSpilled records the current number of reloadable spilled records.
func (s *Spill) SetSpilled(n int) {
	if s == nil {
		return
	}
	s.SpilledEntries.Set(int64(n))
}

// Scoring counts the uncertainty-aware scoring layer's activity: the
// configured mode and quadrature orders (levels, set once at engine
// construction), the number of phase-2 candidates scored by the posterior
// integration path with their quadrature-node likelihood evaluations and
// wall time, and the per-query EDPL computations. The integration counters
// are updated concurrently from phase-2 workers; EDPL is recorded once per
// chunk by the placer.
type Scoring struct {
	BayesMode     Gauge // 0 = ml, 1 = bayes
	PendantNodes  Gauge // pendant-grid quadrature order
	ProximalNodes Gauge // proximal-grid quadrature order
	EDPLEnabled   Gauge // 0 = off, 1 = per-query EDPL computed

	CandidatesIntegrated Counter // candidates scored by the posterior path
	QuadEvals            Counter // grid-node likelihood evaluations
	IntegrateTime        Timer   // wall time inside the integration path

	EDPLQueries Counter // queries with a computed EDPL
	EDPLTime    Timer   // wall time computing EDPL
}

// Configure records the engine's resolved scoring mode and grid orders.
func (s *Scoring) Configure(bayes bool, pendNodes, proxNodes int, edpl bool) {
	if s == nil {
		return
	}
	if bayes {
		s.BayesMode.Set(1)
	} else {
		s.BayesMode.Set(0)
	}
	s.PendantNodes.Set(int64(pendNodes))
	s.ProximalNodes.Set(int64(proxNodes))
	if edpl {
		s.EDPLEnabled.Set(1)
	} else {
		s.EDPLEnabled.Set(0)
	}
}

// CandidateIntegrated records one candidate's posterior integration: its
// grid-node likelihood evaluations and wall time.
func (s *Scoring) CandidateIntegrated(evals int, d time.Duration) {
	if s == nil {
		return
	}
	s.CandidatesIntegrated.Inc()
	s.QuadEvals.Add(uint64(evals))
	s.IntegrateTime.Add(d)
}

// EDPLDone records one chunk's EDPL pass over n queries.
func (s *Scoring) EDPLDone(n int, d time.Duration) {
	if s == nil {
		return
	}
	s.EDPLQueries.Add(uint64(n))
	s.EDPLTime.Add(d)
}

// Fleet counts an engine registry's lifecycle activity: lazy construction,
// the controller's three reclaim levers in escalation order (slot-pool
// shrink, CLV demotion to the spill tier, whole-engine eviction), and the
// bytes those levers handed back to the global budget. TenantsWarm is a
// level — the number of currently constructed engines. Unlike the Sink
// groups (one per engine), one Fleet group serves the whole registry; it is
// updated under the registry's own locks but stays atomic so /metrics can
// read it without them.
type Fleet struct {
	EnginesBuilt   Counter
	EnginesShrunk  Counter // slot-pool shrink operations applied
	EnginesDemoted Counter // full CLV demotions applied
	EnginesEvicted Counter // whole engines torn down for memory
	BuildRejected  Counter // constructions refused for lack of global headroom
	BytesReclaimed Counter // bytes returned to the global budget by all levers
	TenantsWarm    Gauge
}

// Build records one engine construction.
func (f *Fleet) Build() {
	if f == nil {
		return
	}
	f.EnginesBuilt.Inc()
}

// Shrink records one slot-pool shrink that freed n bytes.
func (f *Fleet) Shrink(n int64) {
	if f == nil {
		return
	}
	f.EnginesShrunk.Inc()
	if n > 0 {
		f.BytesReclaimed.Add(uint64(n))
	}
}

// Demote records one full CLV demotion that freed n bytes.
func (f *Fleet) Demote(n int64) {
	if f == nil {
		return
	}
	f.EnginesDemoted.Inc()
	if n > 0 {
		f.BytesReclaimed.Add(uint64(n))
	}
}

// Evict records one whole-engine eviction that freed n bytes.
func (f *Fleet) Evict(n int64) {
	if f == nil {
		return
	}
	f.EnginesEvicted.Inc()
	if n > 0 {
		f.BytesReclaimed.Add(uint64(n))
	}
}

// RejectBuild records one construction refused for lack of global headroom.
func (f *Fleet) RejectBuild() {
	if f == nil {
		return
	}
	f.BuildRejected.Inc()
}

// SetWarm records the current number of constructed engines.
func (f *Fleet) SetWarm(n int) {
	if f == nil {
		return
	}
	f.TenantsWarm.Set(int64(n))
}

// Sink aggregates one run's telemetry groups. Create one per engine; the
// engine hands &sink.AMC to the slot manager, &sink.Pool to the worker
// pool, and updates sink.Pipeline and sink.Dedup itself; a placement server
// updates sink.Server from its handlers and batcher and sink.Dedup from its
// result cache. A nil *Sink disables everything.
type Sink struct {
	AMC      AMC
	Pool     Pool
	Pipeline Pipeline
	Server   Server
	Dedup    Dedup
	Kernel   Kernel
	Spill    Spill
	Scoring  Scoring
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{} }

// AMCGroup returns &s.AMC, or nil for a nil sink.
func (s *Sink) AMCGroup() *AMC {
	if s == nil {
		return nil
	}
	return &s.AMC
}

// PoolGroup returns &s.Pool, or nil for a nil sink.
func (s *Sink) PoolGroup() *Pool {
	if s == nil {
		return nil
	}
	return &s.Pool
}

// PipelineGroup returns &s.Pipeline, or nil for a nil sink.
func (s *Sink) PipelineGroup() *Pipeline {
	if s == nil {
		return nil
	}
	return &s.Pipeline
}

// ServerGroup returns &s.Server, or nil for a nil sink.
func (s *Sink) ServerGroup() *Server {
	if s == nil {
		return nil
	}
	return &s.Server
}

// DedupGroup returns &s.Dedup, or nil for a nil sink.
func (s *Sink) DedupGroup() *Dedup {
	if s == nil {
		return nil
	}
	return &s.Dedup
}

// KernelGroup returns &s.Kernel, or nil for a nil sink.
func (s *Sink) KernelGroup() *Kernel {
	if s == nil {
		return nil
	}
	return &s.Kernel
}

// SpillGroup returns &s.Spill, or nil for a nil sink.
func (s *Sink) SpillGroup() *Spill {
	if s == nil {
		return nil
	}
	return &s.Spill
}

// ScoringGroup returns &s.Scoring, or nil for a nil sink.
func (s *Sink) ScoringGroup() *Scoring {
	if s == nil {
		return nil
	}
	return &s.Scoring
}
