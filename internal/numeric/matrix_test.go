package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %g, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %g, want 0", got)
	}
}

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	id := Identity(4)
	left := Mul(id, a)
	right := Mul(a, id)
	for i := range a.Data {
		if left.Data[i] != a.Data[i] || right.Data[i] != a.Data[i] {
			t.Fatalf("identity multiplication changed element %d", i)
		}
	}
}

func TestMulShapes(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 4)
	c := Mul(a, b)
	if c.Rows != 2 || c.Cols != 4 {
		t.Fatalf("Mul result shape = %dx%d, want 2x4", c.Rows, c.Cols)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched shapes did not panic")
		}
	}()
	Mul(a, a)
}

func TestMulKnownProduct(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &Matrix{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	c := Mul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("Mul element %d = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape = %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func randomSymmetric(n int, r *rand.Rand) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestSymEigReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 3, 4, 8, 20} {
		a := randomSymmetric(n, r)
		vals, vecs, err := SymEig(a)
		if err != nil {
			t.Fatalf("SymEig(n=%d): %v", n, err)
		}
		// Reconstruct V diag(vals) Vᵀ and compare.
		d := NewMatrix(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		rec := Mul(Mul(vecs, d), vecs.Transpose())
		for i := range a.Data {
			if !almostEqual(rec.Data[i], a.Data[i], 1e-8) {
				t.Fatalf("n=%d reconstruction mismatch at %d: %g vs %g", n, i, rec.Data[i], a.Data[i])
			}
		}
	}
}

func TestSymEigOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randomSymmetric(6, r)
	_, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	vtv := Mul(vecs.Transpose(), vecs)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(vtv.At(i, j), want, 1e-9) {
				t.Fatalf("VᵀV(%d,%d) = %g, want %g", i, j, vtv.At(i, j), want)
			}
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -1)
	a.Set(2, 2, 5)
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	got := map[float64]bool{}
	for _, v := range vals {
		got[math.Round(v*1e9)/1e9] = true
	}
	for _, w := range []float64{3, -1, 5} {
		if !got[w] {
			t.Fatalf("eigenvalues %v missing %g", vals, w)
		}
	}
}

func TestSymEigRejectsAsymmetric(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	if _, _, err := SymEig(a); err == nil {
		t.Fatal("SymEig accepted an asymmetric matrix")
	}
}

func TestSymEigRejectsNonSquare(t *testing.T) {
	if _, _, err := SymEig(NewMatrix(2, 3)); err == nil {
		t.Fatal("SymEig accepted a non-square matrix")
	}
}

// Property: eigenvalues of A sum to trace(A).
func TestSymEigTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(6))
		a := randomSymmetric(n, r)
		vals, _, err := SymEig(a)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		return almostEqual(trace, sum, 1e-8*(1+math.Abs(trace)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxOffDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 2, -4)
	a.Set(1, 1, 100) // diagonal must be ignored
	if got := a.MaxOffDiagonal(); got != 4 {
		t.Fatalf("MaxOffDiagonal = %g, want 4", got)
	}
}
