package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLnGammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
	}
	for _, c := range cases {
		if got := LnGamma(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LnGamma(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestIncompleteGammaBounds(t *testing.T) {
	if v, err := LowerIncompleteGammaRegularized(2, 0); err != nil || v != 0 {
		t.Fatalf("P(2,0) = %g, %v; want 0, nil", v, err)
	}
	v, err := LowerIncompleteGammaRegularized(2, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 1, 1e-12) {
		t.Fatalf("P(2,1e6) = %g, want ~1", v)
	}
}

// For shape a=1 the gamma distribution is Exponential(1): P(1,x) = 1-e^{-x}.
func TestIncompleteGammaExponentialCase(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		v, err := LowerIncompleteGammaRegularized(1, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x)
		if !almostEqual(v, want, 1e-10) {
			t.Errorf("P(1,%g) = %g, want %g", x, v, want)
		}
	}
}

func TestIncompleteGammaRejectsBadArgs(t *testing.T) {
	if _, err := LowerIncompleteGammaRegularized(0, 1); err == nil {
		t.Error("a=0 accepted")
	}
	if _, err := LowerIncompleteGammaRegularized(1, -1); err == nil {
		t.Error("x<0 accepted")
	}
}

func TestGammaQuantileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := seed
		if r < 0 {
			r = -r
		}
		p := 0.05 + 0.9*float64(r%997)/997.0
		shape := 0.2 + 3*float64(r%31)/31.0
		q, err := GammaQuantile(p, shape, 1)
		if err != nil {
			return false
		}
		back, err := LowerIncompleteGammaRegularized(shape, q)
		if err != nil {
			return false
		}
		return almostEqual(back, p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaQuantileEdges(t *testing.T) {
	if q, err := GammaQuantile(0, 1, 1); err != nil || q != 0 {
		t.Fatalf("quantile(0) = %g, %v", q, err)
	}
	if q, err := GammaQuantile(1, 1, 1); err != nil || !math.IsInf(q, 1) {
		t.Fatalf("quantile(1) = %g, %v", q, err)
	}
	if _, err := GammaQuantile(-0.1, 1, 1); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, err := GammaQuantile(0.5, -1, 1); err == nil {
		t.Fatal("negative shape accepted")
	}
}

func TestGammaQuantileScale(t *testing.T) {
	q1, err := GammaQuantile(0.7, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q3, err := GammaQuantile(0.7, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(q3, 3*q1, 1e-9*q3) {
		t.Fatalf("scale property violated: %g vs 3*%g", q3, q1)
	}
}

func TestDiscreteGammaRatesMeanOne(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.5, 1, 2, 10} {
		for _, k := range []int{1, 2, 4, 8} {
			rates, err := DiscreteGammaRates(alpha, k)
			if err != nil {
				t.Fatalf("alpha=%g k=%d: %v", alpha, k, err)
			}
			if len(rates) != k {
				t.Fatalf("got %d rates, want %d", len(rates), k)
			}
			mean := 0.0
			for _, r := range rates {
				mean += r
				if r < 0 {
					t.Fatalf("negative rate %g (alpha=%g,k=%d)", r, alpha, k)
				}
			}
			mean /= float64(k)
			if !almostEqual(mean, 1, 1e-9) {
				t.Fatalf("alpha=%g k=%d mean rate %g, want 1", alpha, k, mean)
			}
		}
	}
}

func TestDiscreteGammaRatesMonotone(t *testing.T) {
	rates, err := DiscreteGammaRates(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatalf("rates not strictly increasing: %v", rates)
		}
	}
	// Small alpha means strong heterogeneity: lowest category near zero.
	if rates[0] > 0.2 {
		t.Fatalf("alpha=0.5 lowest rate %g suspiciously high", rates[0])
	}
}

func TestDiscreteGammaLargeAlphaApproachesUniform(t *testing.T) {
	rates, err := DiscreteGammaRates(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rates {
		if !almostEqual(r, 1, 0.1) {
			t.Fatalf("alpha=1000 rate %g should be close to 1 (rates=%v)", r, rates)
		}
	}
}

func TestDiscreteGammaRejectsBadArgs(t *testing.T) {
	if _, err := DiscreteGammaRates(0, 4); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := DiscreteGammaRates(1, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestBrentMinQuadratic(t *testing.T) {
	res := BrentMin(func(x float64) float64 { return (x - 3.25) * (x - 3.25) }, 0, 10, 1e-10, 200)
	if !almostEqual(res.X, 3.25, 1e-7) {
		t.Fatalf("argmin = %g, want 3.25", res.X)
	}
	if !almostEqual(res.F, 0, 1e-12) {
		t.Fatalf("min = %g, want 0", res.F)
	}
}

func TestBrentMinAsymmetric(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) - 2*x } // min at ln 2
	res := BrentMin(f, 0, 5, 1e-12, 200)
	if !almostEqual(res.X, math.Ln2, 1e-7) {
		t.Fatalf("argmin = %g, want ln2=%g", res.X, math.Ln2)
	}
}

func TestBrentMinBoundaryMinimum(t *testing.T) {
	// Monotone increasing: minimum at the left boundary.
	res := BrentMin(func(x float64) float64 { return x }, 1, 2, 1e-9, 200)
	if res.X > 1.001 {
		t.Fatalf("boundary minimum: got %g, want ~1", res.X)
	}
}

func TestBrentMinReversedBounds(t *testing.T) {
	res := BrentMin(func(x float64) float64 { return (x - 1) * (x - 1) }, 5, -5, 1e-10, 200)
	if !almostEqual(res.X, 1, 1e-6) {
		t.Fatalf("argmin with reversed bounds = %g, want 1", res.X)
	}
}

func TestBrentMinStaysInBounds(t *testing.T) {
	// Property: the argmin returned never leaves the bracketing interval,
	// whatever the (possibly nasty) objective does.
	if err := quick.Check(func(seed int64) bool {
		r := seed
		if r < 0 {
			r = -r
		}
		lo := float64(r%100) / 10
		hi := lo + 0.1 + float64(r%37)
		f := func(x float64) float64 { return math.Sin(x*7) + 0.1*x }
		res := BrentMin(f, lo, hi, 1e-8, 60)
		return res.X >= lo-1e-9 && res.X <= hi+1e-9
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBrentMinFlatFunction(t *testing.T) {
	res := BrentMin(func(float64) float64 { return 3 }, 0, 1, 1e-9, 100)
	if res.F != 3 || res.X < 0 || res.X > 1 {
		t.Fatalf("flat objective: %+v", res)
	}
}
