// Package numeric provides the small dense linear-algebra and special-function
// kernels that the substitution-model and likelihood layers are built on:
// symmetric eigendecomposition (cyclic Jacobi), matrix helpers, the discrete
// Gamma rate-heterogeneity construction, and a one-dimensional Brent
// minimizer used for branch-length optimization.
//
// Everything operates on row-major []float64 buffers to avoid per-element
// interface or bounds-check overhead in the hot paths of the likelihood
// engine.
package numeric

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Mul returns a*b. It panics if the shapes are incompatible, since shape
// mismatches are programming errors in this codebase.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("numeric: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MaxOffDiagonal returns the largest absolute off-diagonal element of a
// square matrix, useful for convergence checks and symmetry assertions.
func (m *Matrix) MaxOffDiagonal() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i == j {
				continue
			}
			if v := math.Abs(m.At(i, j)); v > max {
				max = v
			}
		}
	}
	return max
}

// jacobiMaxSweeps bounds the number of full Jacobi sweeps. Substitution-model
// matrices are tiny (4×4 or 20×20) and converge in well under 20 sweeps.
const jacobiMaxSweeps = 100

// SymEig computes the eigendecomposition of the symmetric n×n matrix a using
// the cyclic Jacobi method. It returns the eigenvalues and a matrix whose
// COLUMNS are the corresponding orthonormal eigenvectors, i.e.
// a = V * diag(vals) * Vᵀ. The input matrix is not modified.
//
// SymEig returns an error if a is not square, not symmetric (beyond a small
// tolerance), or fails to converge.
func SymEig(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("numeric: SymEig requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	// Symmetry check with a tolerance scaled to the matrix magnitude.
	scale := 0.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	tol := 1e-9 * math.Max(scale, 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tol {
				return nil, nil, fmt.Errorf("numeric: SymEig input not symmetric at (%d,%d): %g vs %g", i, j, a.At(i, j), a.At(j, i))
			}
		}
	}

	w := a.Clone()
	v := Identity(n)
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-30 {
			vals = make([]float64, n)
			for i := 0; i < n; i++ {
				vals[i] = w.At(i, i)
			}
			return vals, v, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation G(p,q,θ) on both sides: w = GᵀwG.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("numeric: SymEig failed to converge in %d sweeps", jacobiMaxSweeps)
}
