package numeric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// referenceTopK is the behaviour TopKIndices replaces: a full sort of all
// indices by (value desc, index asc), truncated to k.
func referenceTopK(row []float64, k int) []int {
	order := make([]int, len(row))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if row[order[a]] != row[order[b]] {
			return row[order[a]] > row[order[b]]
		}
		return order[a] < order[b]
	})
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}

func TestTopKIndicesMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		row := make([]float64, n)
		for i := range row {
			switch rng.Intn(10) {
			case 0:
				row[i] = math.Inf(-1) // prescore of an impossible branch
			case 1:
				row[i] = row[rng.Intn(n)] // force ties (often 0 early on)
			default:
				row[i] = -1000 + 2000*rng.Float64()
			}
		}
		k := rng.Intn(n + 3) // occasionally k > n and k == 0
		var buf []int
		if rng.Intn(2) == 0 {
			buf = make([]int, 0, k+rng.Intn(5))
		}
		got := TopKIndices(row, k, buf)
		want := referenceTopK(row, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len=%d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): rank %d index %d, want %d",
					trial, n, k, i, got[i], want[i])
			}
		}
	}
}

func TestTopKIndicesReusesBuffer(t *testing.T) {
	row := []float64{3, 1, 4, 1, 5}
	buf := make([]int, 8)
	got := TopKIndices(row, 3, buf)
	if &got[0] != &buf[0] {
		t.Error("result did not reuse the provided buffer")
	}
	want := []int{4, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
