package numeric

import "math"

// BrentResult holds the outcome of a one-dimensional minimization.
type BrentResult struct {
	X     float64 // argmin
	F     float64 // minimum value
	Iters int     // iterations used
}

// BrentMin minimizes f on [lo, hi] using Brent's method (golden section with
// parabolic interpolation). tol is the absolute x tolerance; maxIter bounds
// the iteration count. The function is assumed unimodal on the interval; if
// it is not, BrentMin still returns a local minimum.
//
// This is the workhorse for pendant/proximal branch-length optimization in
// the placement engine, where f is the negative placement log-likelihood.
func BrentMin(f func(float64) float64, lo, hi, tol float64, maxIter int) BrentResult {
	const golden = 0.3819660112501051 // 2 - φ
	if lo > hi {
		lo, hi = hi, lo
	}
	x := lo + golden*(hi-lo)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64
	iters := 0
	for ; iters < maxIter; iters++ {
		m := 0.5 * (lo + hi)
		tol1 := tol*math.Abs(x) + 1e-12
		tol2 := 2 * tol1
		if math.Abs(x-m) <= tol2-0.5*(hi-lo) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Attempt parabolic interpolation through (x,fx),(w,fw),(v,fv).
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etemp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etemp) && p > q*(lo-x) && p < q*(hi-x) {
				d = p / q
				u := x + d
				if u-lo < tol2 || hi-u < tol2 {
					d = math.Copysign(tol1, m-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x < m {
				e = hi - x
			} else {
				e = lo - x
			}
			d = golden * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u < x {
				hi = x
			} else {
				lo = x
			}
			v, fv = w, fw
			w, fw = x, fx
			x, fx = u, fu
		} else {
			if u < x {
				lo = u
			} else {
				hi = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return BrentResult{X: x, F: fx, Iters: iters}
}
