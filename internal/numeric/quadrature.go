package numeric

import "math"

// This file provides the Gauss-Legendre quadrature rules behind the Bayesian
// posterior scoring mode: the placement engine integrates the query
// likelihood over pendant × proximal branch-length grids, and the node/weight
// tables computed here define those grids. Rules are computed once per
// engine (or table lookup for the small orders the engine uses) and mapped
// onto per-branch intervals with MapInterval.

// GaussLegendre returns the n nodes and weights of the Gauss-Legendre
// quadrature rule on [-1, 1]: ∫ f ≈ Σ w_i f(x_i), exact for polynomials of
// degree ≤ 2n−1. Nodes are ascending; weights are positive and sum to 2.
// Nodes are the roots of the Legendre polynomial P_n, found by Newton
// iteration from the Chebyshev initial guess — the classic Golub-Welsch-free
// construction, fully deterministic for a given n.
func GaussLegendre(n int) (nodes, weights []float64) {
	if n < 1 {
		panic("numeric: GaussLegendre needs n >= 1")
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Chebyshev estimate of the i'th root (descending), then Newton.
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, x
			if n == 1 {
				p1 = x
			}
			// Recurrence (k+1)P_{k+1} = (2k+1)xP_k − kP_{k−1}.
			for k := 1; k < n; k++ {
				p0, p1 = p1, ((2*float64(k)+1)*x*p1-float64(k)*p0)/(float64(k)+1)
			}
			// P'_n(x) = n(xP_n − P_{n−1}) / (x² − 1).
			dp = float64(n) * (x*p1 - p0) / (x*x - 1)
			dx := p1 / dp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		nodes[i] = -x
		nodes[n-1-i] = x
		w := 2 / ((1 - x*x) * dp * dp)
		weights[i] = w
		weights[n-1-i] = w
	}
	if n%2 == 1 {
		// The middle node of an odd rule is exactly zero; the Newton loop
		// leaves it at rounding distance, so pin it.
		nodes[n/2] = 0
	}
	return nodes, weights
}

// MapInterval writes into xs/ws the rule (nodes, weights) on [-1, 1] mapped
// onto [a, b]: x ↦ (a+b)/2 + (b−a)/2·x, w ↦ (b−a)/2·w. The mapped weights
// sum to b−a, so Σ ws_i f(xs_i) approximates ∫_a^b f. xs and ws must have
// len(nodes) entries; the function allocates nothing.
func MapInterval(nodes, weights []float64, a, b float64, xs, ws []float64) {
	mid, half := 0.5*(a+b), 0.5*(b-a)
	for i, x := range nodes {
		xs[i] = mid + half*x
		ws[i] = half * weights[i]
	}
}

// Trapezoid returns the n ≥ 2 nodes and weights of the composite trapezoid
// rule on [-1, 1] — the simpler alternative quadrature the posterior mode's
// convergence tests compare against. Weights sum to 2.
func Trapezoid(n int) (nodes, weights []float64) {
	if n < 2 {
		panic("numeric: Trapezoid needs n >= 2")
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	h := 2 / float64(n-1)
	for i := range nodes {
		nodes[i] = -1 + h*float64(i)
		weights[i] = h
	}
	weights[0] = h / 2
	weights[n-1] = h / 2
	return nodes, weights
}
