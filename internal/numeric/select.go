package numeric

// TopKIndices returns the indices of the k largest values of row, ordered
// best-first with ties broken by ascending index — the same total order a
// full descending sort with an index tie-break would produce, but in
// O(len(row)·log k) via a bounded min-heap instead of O(n·log n). The
// returned slice reuses buf's backing array when it is large enough, so hot
// loops can call this allocation-free. The selection is deterministic: for a
// given row and k the result is always identical.
func TopKIndices(row []float64, k int, buf []int) []int {
	if k > len(row) {
		k = len(row)
	}
	if k <= 0 {
		return buf[:0]
	}
	if cap(buf) < k {
		buf = make([]int, k)
	}
	h := buf[:0]

	// worse(a, b) reports whether index a ranks strictly below index b.
	worse := func(a, b int) bool {
		if row[a] != row[b] {
			return row[a] < row[b]
		}
		return a > b
	}
	siftDown := func(root, size int) {
		for {
			child := 2*root + 1
			if child >= size {
				return
			}
			if child+1 < size && worse(h[child+1], h[child]) {
				child++
			}
			if !worse(h[child], h[root]) {
				return
			}
			h[root], h[child] = h[child], h[root]
			root = child
		}
	}

	// Min-heap (root = worst of the kept set) over the first k indices, then
	// stream the rest through the root.
	h = buf[:k]
	for i := 0; i < k; i++ {
		h[i] = i
	}
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(i, k)
	}
	for i := k; i < len(row); i++ {
		if worse(h[0], i) {
			h[0] = i
			siftDown(0, k)
		}
	}

	// Heap-sort: repeatedly move the worst remaining element to the end,
	// leaving h ordered best-first.
	for size := k - 1; size > 0; size-- {
		h[0], h[size] = h[size], h[0]
		siftDown(0, size)
	}
	return h
}
