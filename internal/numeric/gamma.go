package numeric

import (
	"fmt"
	"math"
)

// LnGamma returns the natural log of the absolute value of the Gamma
// function. It is a thin wrapper around math.Lgamma that discards the sign,
// which is always +1 for the positive arguments used in this package.
func LnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LowerIncompleteGammaRegularized computes P(a, x) = γ(a,x)/Γ(a), the
// regularized lower incomplete gamma function, using the series expansion for
// x < a+1 and the continued fraction otherwise (Numerical Recipes style).
func LowerIncompleteGammaRegularized(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("numeric: incomplete gamma requires a > 0, got %g", a)
	}
	if x < 0 {
		return 0, fmt.Errorf("numeric: incomplete gamma requires x >= 0, got %g", x)
	}
	if x == 0 {
		return 0, nil
	}
	const (
		maxIter = 500
		eps     = 3e-14
		fpmin   = 1e-300
	)
	lg := LnGamma(a)
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < maxIter; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*eps {
				return sum * math.Exp(-x+a*math.Log(x)-lg), nil
			}
		}
		return 0, fmt.Errorf("numeric: incomplete gamma series failed to converge (a=%g, x=%g)", a, x)
	}
	// Continued fraction for Q(a,x); P = 1 - Q.
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			q := math.Exp(-x+a*math.Log(x)-lg) * h
			return 1 - q, nil
		}
	}
	return 0, fmt.Errorf("numeric: incomplete gamma continued fraction failed to converge (a=%g, x=%g)", a, x)
}

// GammaQuantile returns x such that P(shape, x/scale) = p for the Gamma
// distribution with the given shape and scale, solved by bisection refined
// with Newton steps on the regularized incomplete gamma function.
func GammaQuantile(p, shape, scale float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("numeric: GammaQuantile probability out of range: %g", p)
	}
	if shape <= 0 || scale <= 0 {
		return 0, fmt.Errorf("numeric: GammaQuantile requires positive shape/scale, got %g/%g", shape, scale)
	}
	if p == 0 {
		return 0, nil
	}
	if p == 1 {
		return math.Inf(1), nil
	}
	// Bracket the root in standardized (scale=1) space.
	lo, hi := 0.0, math.Max(4*shape, 8.0)
	for {
		v, err := LowerIncompleteGammaRegularized(shape, hi)
		if err != nil {
			return 0, err
		}
		if v >= p {
			break
		}
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("numeric: GammaQuantile failed to bracket (p=%g shape=%g)", p, shape)
		}
	}
	x := shape // starting point near the mean
	for iter := 0; iter < 200; iter++ {
		v, err := LowerIncompleteGammaRegularized(shape, x)
		if err != nil {
			return 0, err
		}
		if v > p {
			hi = x
		} else {
			lo = x
		}
		// Newton step: d/dx P(a,x) = x^(a-1) e^-x / Γ(a).
		pdf := math.Exp((shape-1)*math.Log(x) - x - LnGamma(shape))
		var next float64
		if pdf > 0 {
			next = x - (v-p)/pdf
		}
		if !(next > lo && next < hi) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) < 1e-12*(1+x) {
			return next * scale, nil
		}
		x = next
	}
	return x * scale, nil
}

// DiscreteGammaRates computes the mean rates of k equal-probability
// categories of a Gamma(alpha, 1/alpha) distribution (mean 1), the standard
// discrete approximation of among-site rate heterogeneity (Yang 1994).
// The returned rates average to exactly 1.
func DiscreteGammaRates(alpha float64, k int) ([]float64, error) {
	if k <= 0 {
		return nil, fmt.Errorf("numeric: DiscreteGammaRates requires k > 0, got %d", k)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("numeric: DiscreteGammaRates requires alpha > 0, got %g", alpha)
	}
	if k == 1 {
		return []float64{1}, nil
	}
	rates := make([]float64, k)
	// Category boundaries are the quantiles at i/k; the mean rate of each
	// category uses the identity
	//   E[X | a<X<b] * P(a<X<b) = alpha*scale * (P(alpha+1,b/s) - P(alpha+1,a/s))
	// with scale s = 1/alpha so the overall mean is 1.
	scale := 1 / alpha
	bounds := make([]float64, k+1)
	bounds[0] = 0
	bounds[k] = math.Inf(1)
	for i := 1; i < k; i++ {
		q, err := GammaQuantile(float64(i)/float64(k), alpha, scale)
		if err != nil {
			return nil, err
		}
		bounds[i] = q
	}
	prevP := 0.0
	for i := 0; i < k; i++ {
		var pHi float64
		if i == k-1 {
			pHi = 1
		} else {
			var err error
			pHi, err = LowerIncompleteGammaRegularized(alpha+1, bounds[i+1]/scale)
			if err != nil {
				return nil, err
			}
		}
		// Mean of category i times its probability 1/k.
		rates[i] = (pHi - prevP) * float64(k)
		prevP = pHi
	}
	// Normalize exactly; accumulated quadrature error is tiny but we want the
	// mean rate to be 1 to machine precision for likelihood comparability.
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	for i := range rates {
		rates[i] *= float64(k) / sum
	}
	return rates, nil
}
