package numeric

import (
	"math"
	"testing"
)

// integrate applies a rule mapped onto [a,b] to f.
func integrate(nodes, weights []float64, a, b float64, f func(float64) float64) float64 {
	xs := make([]float64, len(nodes))
	ws := make([]float64, len(nodes))
	MapInterval(nodes, weights, a, b, xs, ws)
	s := 0.0
	for i, x := range xs {
		s += ws[i] * f(x)
	}
	return s
}

// TestGaussLegendreExactness: an n-point rule must integrate every monomial
// x^k with k ≤ 2n−1 exactly on [-1,1] (up to rounding).
func TestGaussLegendreExactness(t *testing.T) {
	for n := 1; n <= 12; n++ {
		nodes, weights := GaussLegendre(n)
		for k := 0; k <= 2*n-1; k++ {
			got := 0.0
			for i, x := range nodes {
				got += weights[i] * math.Pow(x, float64(k))
			}
			want := 0.0
			if k%2 == 0 {
				want = 2 / float64(k+1)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("n=%d k=%d: got %.17g want %.17g", n, k, got, want)
			}
		}
	}
}

// TestGaussLegendreStructure: nodes ascending and symmetric about zero,
// weights positive and summing to 2.
func TestGaussLegendreStructure(t *testing.T) {
	for n := 1; n <= 32; n++ {
		nodes, weights := GaussLegendre(n)
		sum := 0.0
		for i, w := range weights {
			if w <= 0 {
				t.Fatalf("n=%d: weight[%d]=%g not positive", n, i, w)
			}
			sum += w
			if i > 0 && nodes[i] <= nodes[i-1] {
				t.Fatalf("n=%d: nodes not ascending at %d: %g <= %g", n, i, nodes[i], nodes[i-1])
			}
			if math.Abs(nodes[i]+nodes[n-1-i]) > 1e-14 {
				t.Fatalf("n=%d: nodes not symmetric: %g vs %g", n, nodes[i], nodes[n-1-i])
			}
			if math.Abs(weights[i]-weights[n-1-i]) > 1e-14 {
				t.Fatalf("n=%d: weights not symmetric", n)
			}
		}
		if math.Abs(sum-2) > 1e-13 {
			t.Fatalf("n=%d: weights sum to %.17g, want 2", n, sum)
		}
	}
}

// TestGaussLegendreConvergence: on a smooth non-polynomial integrand the
// error must shrink monotonically (within a tiny tolerance for rounding) as
// the rule is refined, and vanish rapidly.
func TestGaussLegendreConvergence(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x) }
	a, b := 0.1, 2.3
	want := math.Exp(-a) - math.Exp(-b)
	prev := math.Inf(1)
	for n := 2; n <= 10; n++ {
		nodes, weights := GaussLegendre(n)
		err := math.Abs(integrate(nodes, weights, a, b, f) - want)
		if err > prev*1.001+1e-14 {
			t.Fatalf("n=%d: error %g did not decrease from %g", n, err, prev)
		}
		prev = err
	}
	if prev > 1e-12 {
		t.Fatalf("10-point rule error %g too large", prev)
	}
}

// TestMapIntervalWeightSum: mapped weights must sum to the interval length.
func TestMapIntervalWeightSum(t *testing.T) {
	nodes, weights := GaussLegendre(7)
	xs := make([]float64, 7)
	ws := make([]float64, 7)
	a, b := 1e-8, 0.37
	MapInterval(nodes, weights, a, b, xs, ws)
	sum := 0.0
	for i, w := range ws {
		sum += w
		if xs[i] < a || xs[i] > b {
			t.Fatalf("mapped node %g outside [%g,%g]", xs[i], a, b)
		}
	}
	if math.Abs(sum-(b-a)) > 1e-15 {
		t.Fatalf("mapped weights sum to %g, want %g", sum, b-a)
	}
}

// TestTrapezoidConvergence: trapezoid converges to the same integral, more
// slowly than Gauss-Legendre at equal node count.
func TestTrapezoidConvergence(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x) }
	a, b := 0.1, 2.3
	want := math.Exp(-a) - math.Exp(-b)
	prev := math.Inf(1)
	for _, n := range []int{4, 8, 16, 32, 64} {
		nodes, weights := Trapezoid(n)
		err := math.Abs(integrate(nodes, weights, a, b, f) - want)
		if err >= prev {
			t.Fatalf("n=%d: trapezoid error %g did not decrease from %g", n, err, prev)
		}
		prev = err
	}
	gn, gw := GaussLegendre(8)
	tn, tw := Trapezoid(8)
	gerr := math.Abs(integrate(gn, gw, a, b, f) - want)
	terr := math.Abs(integrate(tn, tw, a, b, f) - want)
	if gerr >= terr {
		t.Fatalf("Gauss-Legendre (err %g) should beat trapezoid (err %g) at n=8", gerr, terr)
	}
}
