package workload

import (
	"math/rand"
	"testing"

	"phylomem/internal/model"
	"phylomem/internal/phylo"
	"phylomem/internal/placement"
	"phylomem/internal/seq"
)

func simpleConfig(seed int64) SimConfig {
	rates, err := model.GammaRates(1.0, 4)
	if err != nil {
		panic(err)
	}
	return SimConfig{
		Name:       "test",
		Leaves:     24,
		Sites:      150,
		NumQueries: 10,
		Alphabet:   seq.DNA,
		Model:      model.JC69(),
		Rates:      rates,
		Seed:       seed,
	}
}

func TestSimulateShapes(t *testing.T) {
	ds, err := Simulate(simpleConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Tree.NumLeaves() != 24 {
		t.Fatalf("leaves = %d", ds.Tree.NumLeaves())
	}
	if ds.RefMSA.Len() != 24 || ds.RefMSA.Width() != 150 {
		t.Fatalf("ref MSA = %d x %d", ds.RefMSA.Len(), ds.RefMSA.Width())
	}
	if len(ds.Queries) != 10 {
		t.Fatalf("queries = %d", len(ds.Queries))
	}
	for _, q := range ds.Queries {
		if len(q.Data) != 150 {
			t.Fatalf("query %s width = %d", q.Label, len(q.Data))
		}
	}
	if ds.Type() != "NT" {
		t.Fatalf("type = %s", ds.Type())
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(simpleConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(simpleConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Tree.WriteNewick() != b.Tree.WriteNewick() {
		t.Fatal("trees differ for the same seed")
	}
	for i := range a.RefMSA.Sequences {
		if string(a.RefMSA.Sequences[i].Data) != string(b.RefMSA.Sequences[i].Data) {
			t.Fatal("reference sequences differ for the same seed")
		}
	}
	for i := range a.Queries {
		if string(a.Queries[i].Data) != string(b.Queries[i].Data) {
			t.Fatal("queries differ for the same seed")
		}
	}
	c, err := Simulate(simpleConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if a.Tree.WriteNewick() == c.Tree.WriteNewick() {
		t.Fatal("different seeds produced identical trees")
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := simpleConfig(1)
	bad.Leaves = 2
	if _, err := Simulate(bad); err == nil {
		t.Error("2 leaves accepted")
	}
	bad = simpleConfig(1)
	bad.Sites = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("0 sites accepted")
	}
	bad = simpleConfig(1)
	bad.Model = model.PoissonAA()
	if _, err := Simulate(bad); err == nil {
		t.Error("AA model over DNA alphabet accepted")
	}
}

func TestSimulatedSignalIsPhylogenetic(t *testing.T) {
	// Sequences evolved along the tree must carry signal: sister leaves
	// should be more similar than distant ones, and a query evolved from a
	// leaf should place near it. Verify the pipeline end-to-end.
	cfg := simpleConfig(7)
	cfg.QueryDivergence = 0.05
	ds, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := seq.Compress(ds.RefMSA)
	if err != nil {
		t.Fatal(err)
	}
	part, err := phylo.NewPartition(ds.Model, ds.Rates, comp, ds.Tree)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := placement.EncodeQueries(ds.Alphabet, ds.Queries, ds.RefMSA.Width())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := placement.New(part, ds.Tree, placement.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Place(queries)
	if err != nil {
		t.Fatal(err)
	}
	// With low divergence, most best placements should be decisive.
	decisive := 0
	for _, q := range res.Queries {
		if q.Placements[0].LikeWeightRatio > 0.3 {
			decisive++
		}
	}
	if decisive < len(res.Queries)/2 {
		t.Fatalf("only %d/%d placements decisive; simulated data may lack signal", decisive, len(res.Queries))
	}
}

func TestQueryCoverageMasks(t *testing.T) {
	cfg := simpleConfig(3)
	cfg.QueryCoverage = 0.3
	ds, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries {
		gaps := 0
		for _, c := range q.Data {
			if c == '-' {
				gaps++
			}
		}
		covered := len(q.Data) - gaps
		want := int(0.3 * float64(len(q.Data)))
		if covered < want-1 || covered > want+1 {
			t.Fatalf("query %s covers %d sites, want ~%d", q.Label, covered, want)
		}
	}
}

func TestCanonicalDatasets(t *testing.T) {
	for _, name := range Names() {
		ds, err := ByName(name, 64, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Name != name {
			t.Fatalf("name = %q", ds.Name)
		}
		if ds.Tree.NumLeaves() < 16 || ds.RefMSA.Width() < 64 {
			t.Fatalf("%s too small: %d x %d", name, ds.Tree.NumLeaves(), ds.RefMSA.Width())
		}
	}
	if _, err := ByName("nope", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Neotrop(0, 1); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestCanonicalDatasetCharacteristics(t *testing.T) {
	neo, err := Neotrop(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := Serratus(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	pro, err := ProRef(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if neo.Type() != "NT" || ser.Type() != "AA" || pro.Type() != "NT" {
		t.Fatal("dataset types wrong")
	}
	// The defining shape relations from Table I must survive scaling:
	// neotrop has the most queries; serratus the widest alignment; pro_ref
	// the largest tree.
	if len(neo.Queries) <= len(ser.Queries) || len(neo.Queries) <= len(pro.Queries) {
		t.Fatal("neotrop does not dominate query count")
	}
	if ser.RefMSA.Width() <= neo.RefMSA.Width() || ser.RefMSA.Width() <= pro.RefMSA.Width() {
		t.Fatal("serratus does not dominate alignment width")
	}
	if pro.Tree.NumLeaves() <= neo.Tree.NumLeaves() || pro.Tree.NumLeaves() <= ser.Tree.NumLeaves() {
		t.Fatal("pro_ref does not dominate tree size")
	}
}

func TestSampleWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := [3]int{}
	w := []float64{0.5, 0.3, 0.2}
	for i := 0; i < 30000; i++ {
		counts[sampleWeighted(rng, w)]++
	}
	for i, want := range []float64{0.5, 0.3, 0.2} {
		got := float64(counts[i]) / 30000
		if got < want-0.02 || got > want+0.02 {
			t.Fatalf("category %d frequency %g, want ~%g", i, got, want)
		}
	}
}
