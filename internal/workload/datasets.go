package workload

import (
	"fmt"

	"phylomem/internal/model"
	"phylomem/internal/seq"
)

// The three canonical datasets of the paper's Table I. Scale divides each
// dimension: scale 1 reproduces the full published dimensions (pro_ref then
// needs tens of GiB in reference mode — exactly the paper's motivation);
// larger scales generate shape-preserving miniatures for laptops and tests.
//
//	name      leaves  sites   #QSs    type
//	neotrop      512   4,686  95,417  NT    (many queries)
//	serratus     546  10,170     136  AA    (wide alignment, 20 states)
//	pro_ref   20,000   1,582   3,333  NT    (huge reference tree)

// scaleDim divides v by scale with a floor.
func scaleDim(v int, scale, floor int) int {
	out := v / scale
	if out < floor {
		out = floor
	}
	return out
}

// Neotrop generates the neotropical-soil-like dataset: a moderate NT tree
// with a very large number of fragmentary (read-like) queries.
func Neotrop(scale int, seed int64) (*Dataset, error) {
	if scale < 1 {
		return nil, fmt.Errorf("workload: scale must be >= 1, got %d", scale)
	}
	gtr, err := model.GTR([]float64{0.28, 0.22, 0.24, 0.26}, []float64{1.1, 2.9, 0.7, 0.9, 3.2, 1.0})
	if err != nil {
		return nil, err
	}
	rates, err := model.GammaRates(0.7, 4)
	if err != nil {
		return nil, err
	}
	return Simulate(SimConfig{
		Name:          "neotrop",
		Leaves:        scaleDim(512, scale, 48),
		Sites:         scaleDim(4686, scale, 128),
		NumQueries:    scaleDim(95417, scale, 50),
		Alphabet:      seq.DNA,
		Model:         gtr,
		Rates:         rates,
		Seed:          seed,
		QueryCoverage: 0.35, // 16S read fragments
	})
}

// Serratus generates the Coronaviridae-like dataset: a wide amino-acid
// alignment with few, long queries.
func Serratus(scale int, seed int64) (*Dataset, error) {
	if scale < 1 {
		return nil, fmt.Errorf("workload: scale must be >= 1, got %d", scale)
	}
	rates, err := model.GammaRates(1.0, 4)
	if err != nil {
		return nil, err
	}
	return Simulate(SimConfig{
		Name:          "serratus",
		Leaves:        scaleDim(546, scale, 32),
		Sites:         scaleDim(10170, scale, 256),
		NumQueries:    scaleDim(136, scale, 8),
		Alphabet:      seq.AA,
		Model:         model.SyntheticAA(),
		Rates:         rates,
		Seed:          seed,
		QueryCoverage: 1, // assembled genomes: full length
	})
}

// ProRef generates the PICRUSt2-like dataset: a very large NT reference
// tree with moderately many queries.
func ProRef(scale int, seed int64) (*Dataset, error) {
	if scale < 1 {
		return nil, fmt.Errorf("workload: scale must be >= 1, got %d", scale)
	}
	gtr, err := model.GTR([]float64{0.25, 0.23, 0.27, 0.25}, []float64{1.0, 2.5, 0.8, 1.1, 2.8, 1.0})
	if err != nil {
		return nil, err
	}
	rates, err := model.GammaRates(0.9, 4)
	if err != nil {
		return nil, err
	}
	return Simulate(SimConfig{
		Name:          "pro_ref",
		Leaves:        scaleDim(20000, scale, 96),
		Sites:         scaleDim(1582, scale, 100),
		NumQueries:    scaleDim(3333, scale, 16),
		Alphabet:      seq.DNA,
		Model:         gtr,
		Rates:         rates,
		Seed:          seed,
		QueryCoverage: 0.5,
	})
}

// ByName returns one of the canonical datasets ("neotrop", "serratus",
// "pro_ref") at the given scale.
func ByName(name string, scale int, seed int64) (*Dataset, error) {
	switch name {
	case "neotrop":
		return Neotrop(scale, seed)
	case "serratus":
		return Serratus(scale, seed)
	case "pro_ref":
		return ProRef(scale, seed)
	}
	return nil, fmt.Errorf("workload: unknown dataset %q (want neotrop, serratus or pro_ref)", name)
}

// Names lists the canonical dataset names in the paper's Table I order.
func Names() []string { return []string{"neotrop", "serratus", "pro_ref"} }
