// Package workload synthesizes placement datasets with controlled
// dimensions. The paper's empirical datasets (neotrop, serratus, pro_ref)
// are proprietary-ish downloads; what the experiments actually exercise is
// their *shape* — reference-tree size, alignment width, query count, and
// data type — so this package generates datasets with exactly those shapes
// by simulating sequence evolution along random trees under the same models
// the likelihood engine scores with (see DESIGN.md, "Substitutions").
package workload

import (
	"fmt"
	"math/rand"

	"phylomem/internal/model"
	"phylomem/internal/seq"
	"phylomem/internal/tree"
)

// SimConfig controls dataset synthesis.
type SimConfig struct {
	Name       string
	Leaves     int
	Sites      int
	NumQueries int
	Alphabet   *seq.Alphabet
	Model      *model.Model
	Rates      *model.RateHet
	Seed       int64
	// MeanBranch is the mean branch length of the random tree (default 0.1).
	MeanBranch float64
	// QueryCoverage is the fraction of sites a query covers; the rest are
	// gaps, mimicking read data (default 1 = full length).
	QueryCoverage float64
	// QueryDivergence is the pendant branch length queries evolve along
	// before sampling (default 0.15).
	QueryDivergence float64
}

// Dataset is a synthesized placement problem.
type Dataset struct {
	Name     string
	Tree     *tree.Tree
	RefMSA   *seq.MSA
	Queries  []seq.Sequence
	Model    *model.Model
	Rates    *model.RateHet
	Alphabet *seq.Alphabet
	// QueryOrigins[i] is the tree node each query was evolved from — the
	// ground truth that placement-accuracy evaluation measures against.
	QueryOrigins []*tree.Node
}

// Type returns "NT" or "AA" in the paper's Table I notation.
func (d *Dataset) Type() string {
	if d.Alphabet.States() == 4 {
		return "NT"
	}
	return "AA"
}

// Simulate generates a dataset: a random tree, a reference alignment evolved
// along it (per-site discrete-Gamma rates), and queries evolved from random
// attachment points with optional read-like fragmentation.
func Simulate(cfg SimConfig) (*Dataset, error) {
	if cfg.Leaves < 4 {
		return nil, fmt.Errorf("workload: need at least 4 leaves, got %d", cfg.Leaves)
	}
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("workload: need at least 1 site, got %d", cfg.Sites)
	}
	if cfg.Alphabet == nil || cfg.Model == nil || cfg.Rates == nil {
		return nil, fmt.Errorf("workload: alphabet, model and rates are required")
	}
	if cfg.Model.States() != cfg.Alphabet.States() {
		return nil, fmt.Errorf("workload: model states %d != alphabet states %d", cfg.Model.States(), cfg.Alphabet.States())
	}
	if cfg.MeanBranch <= 0 {
		cfg.MeanBranch = 0.1
	}
	if cfg.QueryCoverage <= 0 || cfg.QueryCoverage > 1 {
		cfg.QueryCoverage = 1
	}
	if cfg.QueryDivergence <= 0 {
		cfg.QueryDivergence = 0.15
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr, err := tree.Random(cfg.Leaves, cfg.MeanBranch, rng)
	if err != nil {
		return nil, err
	}

	sim := &simulator{
		cfg:   cfg,
		rng:   rng,
		m:     cfg.Model,
		s:     cfg.Model.States(),
		sites: cfg.Sites,
	}
	// Per-site rate categories, shared by the whole simulation.
	sim.siteRates = make([]float64, cfg.Sites)
	for i := range sim.siteRates {
		sim.siteRates[i] = cfg.Rates.Rates[sampleWeighted(rng, cfg.Rates.Weights)]
	}

	// Evolve from the first inner node outward.
	var root *tree.Node
	for _, n := range tr.Nodes {
		if !n.IsLeaf() {
			root = n
			break
		}
	}
	states := make(map[*tree.Node][]uint8, len(tr.Nodes))
	rootSeq := make([]uint8, cfg.Sites)
	pi := cfg.Model.Freqs()
	for i := range rootSeq {
		rootSeq[i] = uint8(sampleWeighted(rng, pi))
	}
	states[root] = rootSeq
	sim.evolveFrom(root, nil, states)

	var refSeqs []seq.Sequence
	for _, leaf := range tr.Leaves() {
		refSeqs = append(refSeqs, seq.Sequence{Label: leaf.Name, Data: sim.toChars(states[leaf])})
	}
	msa, err := seq.NewMSA(cfg.Alphabet, refSeqs)
	if err != nil {
		return nil, err
	}

	// Queries: evolve from a random node's sequence along a pendant branch,
	// then mask to a read-like window.
	queries := make([]seq.Sequence, 0, cfg.NumQueries)
	origins := make([]*tree.Node, 0, cfg.NumQueries)
	nodes := tr.Nodes
	for qi := 0; qi < cfg.NumQueries; qi++ {
		origin := nodes[rng.Intn(len(nodes))]
		src := states[origin]
		pend := rng.ExpFloat64() * cfg.QueryDivergence
		qstates := sim.evolveSeq(src, pend)
		data := sim.toChars(qstates)
		if cfg.QueryCoverage < 1 {
			covered := int(cfg.QueryCoverage * float64(cfg.Sites))
			if covered < 1 {
				covered = 1
			}
			start := 0
			if covered < cfg.Sites {
				start = rng.Intn(cfg.Sites - covered)
			}
			for i := 0; i < cfg.Sites; i++ {
				if i < start || i >= start+covered {
					data[i] = '-'
				}
			}
		}
		queries = append(queries, seq.Sequence{Label: fmt.Sprintf("query%06d", qi), Data: data})
		origins = append(origins, origin)
	}
	return &Dataset{
		Name:         cfg.Name,
		Tree:         tr,
		RefMSA:       msa,
		Queries:      queries,
		Model:        cfg.Model,
		Rates:        cfg.Rates,
		Alphabet:     cfg.Alphabet,
		QueryOrigins: origins,
	}, nil
}

type simulator struct {
	cfg       SimConfig
	rng       *rand.Rand
	m         *model.Model
	s         int
	sites     int
	siteRates []float64
}

// evolveFrom walks the tree from node, evolving each neighbor's sequence
// from node's along the connecting branch.
func (sim *simulator) evolveFrom(node *tree.Node, from *tree.Edge, states map[*tree.Node][]uint8) {
	type frame struct {
		node *tree.Node
		from *tree.Edge
	}
	stack := []frame{{node: node, from: from}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		src := states[f.node]
		for _, e := range f.node.Edges {
			if e == f.from {
				continue
			}
			child := e.Other(f.node)
			states[child] = sim.evolveSeqLen(src, e.Length)
			stack = append(stack, frame{node: child, from: e})
		}
	}
}

// evolveSeq evolves a sequence along a branch of the given length.
func (sim *simulator) evolveSeq(src []uint8, length float64) []uint8 {
	return sim.evolveSeqLen(src, length)
}

func (sim *simulator) evolveSeqLen(src []uint8, length float64) []uint8 {
	out := make([]uint8, len(src))
	p := make([]float64, sim.s*sim.s)
	// Group sites by rate category to reuse P matrices.
	done := make(map[float64]bool)
	for _, rate := range sim.siteRates {
		if done[rate] {
			continue
		}
		done[rate] = true
		sim.m.TransitionMatrix(p, length, rate)
		for i, r := range sim.siteRates {
			if r != rate {
				continue
			}
			row := p[int(src[i])*sim.s : int(src[i])*sim.s+sim.s]
			out[i] = uint8(sampleWeighted(sim.rng, row))
		}
	}
	return out
}

// toChars renders state indices as alphabet symbols.
func (sim *simulator) toChars(states []uint8) []byte {
	out := make([]byte, len(states))
	for i, s := range states {
		out[i] = sim.cfg.Alphabet.Symbol(int(s))
	}
	return out
}

// sampleWeighted draws an index proportional to the weights (which need not
// be normalized exactly; the tail absorbs rounding).
func sampleWeighted(rng *rand.Rand, w []float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, v := range w {
		acc += v
		if r < acc {
			return i
		}
	}
	return len(w) - 1
}
