package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"phylomem/internal/telemetry"
)

// TestRunCoversAllIndices checks the chunked range distribution: every index
// in [0, n) must be visited exactly once, for a grid of sizes, grains, and
// worker counts.
func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := New(workers)
		defer p.Close()
		for _, n := range []int{0, 1, 2, 3, 16, 100, 1023} {
			for _, grain := range []int{0, 1, 3, 64, 5000} {
				t.Run(fmt.Sprintf("w%d_n%d_g%d", workers, n, grain), func(t *testing.T) {
					counts := make([]atomic.Int32, n)
					p.Run(n, grain, func(lo, hi, worker int) {
						if lo < 0 || hi > n || lo >= hi {
							t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
						}
						if worker < 0 || worker >= p.Size() {
							t.Errorf("worker id %d outside [0,%d)", worker, p.Size())
						}
						for i := lo; i < hi; i++ {
							counts[i].Add(1)
						}
					})
					for i := range counts {
						if c := counts[i].Load(); c != 1 {
							t.Fatalf("index %d visited %d times", i, c)
						}
					}
				})
			}
		}
	}
}

func TestForEach(t *testing.T) {
	p := New(3)
	defer p.Close()
	const n = 500
	var sum atomic.Int64
	p.ForEach(n, func(i, worker int) { sum.Add(int64(i)) })
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

// TestPanicPropagates runs a panicking task under -race: the panic must
// surface on the submitting goroutine, the pool must not deadlock, and it
// must remain usable for subsequent jobs.
func TestPanicPropagates(t *testing.T) {
	p := New(4)
	defer p.Close()
	for round := 0; round < 3; round++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic did not propagate")
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("unexpected panic value %v", r)
				}
			}()
			p.Run(1000, 1, func(lo, hi, worker int) {
				if lo == 500 {
					panic("boom")
				}
			})
		}()
	}
	// The pool must still complete ordinary work after a panicking job.
	var visited atomic.Int64
	p.Run(256, 1, func(lo, hi, worker int) { visited.Add(int64(hi - lo)) })
	if visited.Load() != 256 {
		t.Fatalf("post-panic run visited %d of 256 indices", visited.Load())
	}
}

// TestNestedSubmission submits jobs from inside a running job; the inner job
// must complete (the inner submitter helps itself) even though every pool
// worker may be busy with the outer job.
func TestNestedSubmission(t *testing.T) {
	p := New(2)
	defer p.Close()
	var inner atomic.Int64
	p.Run(8, 1, func(lo, hi, worker int) {
		p.Run(16, 1, func(lo, hi, w int) { inner.Add(int64(hi - lo)) })
	})
	if inner.Load() != 8*16 {
		t.Fatalf("inner work = %d, want %d", inner.Load(), 8*16)
	}
}

// TestConcurrentSubmitters checks that independent goroutines can share one
// pool safely.
func TestConcurrentSubmitters(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ForEach(300, func(i, worker int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if total.Load() != 6*300 {
		t.Fatalf("total = %d, want %d", total.Load(), 6*300)
	}
}

// TestCloseThenRun: a closed pool degrades to inline execution rather than
// panicking on the closed channel.
func TestCloseThenRun(t *testing.T) {
	p := New(4)
	p.Close()
	p.Close() // idempotent
	var n atomic.Int64
	p.Run(100, 7, func(lo, hi, worker int) {
		if worker != p.Workers() {
			t.Errorf("inline worker id = %d, want helper id %d", worker, p.Workers())
		}
		n.Add(int64(hi - lo))
	})
	if n.Load() != 100 {
		t.Fatalf("visited %d of 100", n.Load())
	}
}

// TestBusyTimeAdvances: executing work must accumulate busy time.
func TestBusyTimeAdvances(t *testing.T) {
	p := New(2)
	defer p.Close()
	before := p.BusyTime()
	var sink atomic.Int64
	p.ForEach(100000, func(i, worker int) { sink.Add(int64(i)) })
	if p.BusyTime() <= before {
		t.Fatalf("busy time did not advance (%v -> %v)", before, p.BusyTime())
	}
}

// TestRunContextPreCancelled: a cancelled context fails fast without
// executing anything.
func TestRunContextPreCancelled(t *testing.T) {
	p := New(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	err := p.RunContext(ctx, 1000, 1, func(lo, hi, worker int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d chunks ran under a pre-cancelled context", ran.Load())
	}
}

// TestRunContextCancelMidJob cancels from inside the job: the remaining
// chunks are abandoned, executed ranges stay whole (never a partial range),
// and RunContext returns ctx.Err() after all in-flight chunks finish.
func TestRunContextCancelMidJob(t *testing.T) {
	p := New(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	seen := make(map[int]bool)
	var executed atomic.Int64
	n, grain := 10000, 10
	err := p.RunContext(ctx, n, grain, func(lo, hi, worker int) {
		if hi-lo > grain {
			t.Errorf("range [%d,%d) exceeds grain", lo, hi)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			if seen[i] {
				t.Errorf("index %d executed twice", i)
			}
			seen[i] = true
		}
		mu.Unlock()
		if executed.Add(1) == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got >= int64((n+grain-1)/grain) {
		t.Fatalf("all %d chunks executed despite cancellation", got)
	}
	// The pool survives cancellation: the next job runs to completion.
	var count atomic.Int64
	if err := p.RunContext(context.Background(), 100, 1, func(lo, hi, worker int) {
		count.Add(int64(hi - lo))
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("follow-up job covered %d of 100 indices", count.Load())
	}
}

// TestForEachContextCancelled mirrors the engine's phase-1 usage.
func TestForEachContextCancelled(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.ForEachContext(ctx, 50, func(i, worker int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachContext = %v, want context.Canceled", err)
	}
	if err := p.ForEachContext(context.Background(), 50, func(i, worker int) {}); err != nil {
		t.Fatalf("ForEachContext with live context: %v", err)
	}
}

// TestPoolTelemetry attaches a telemetry group and checks the per-worker
// chunk counts sum to exactly the chunks of every job, with the busy time
// mirrored into the group.
func TestPoolTelemetry(t *testing.T) {
	p := New(4)
	defer p.Close()
	tel := &telemetry.Pool{}
	tel.Init(p.Size())
	p.SetTelemetry(tel)

	const jobs, n, grain = 5, 1000, 10
	for j := 0; j < jobs; j++ {
		p.Run(n, grain, func(lo, hi, worker int) {
			if worker < 0 || worker >= p.Size() {
				t.Errorf("worker id %d outside [0,%d)", worker, p.Size())
			}
		})
	}
	if got := tel.JobsSubmitted.Load(); got != jobs {
		t.Fatalf("JobsSubmitted = %d, want %d", got, jobs)
	}
	var chunks uint64
	for i := range tel.Workers {
		chunks += tel.Workers[i].Chunks.Load()
	}
	if want := uint64(jobs * n / grain); chunks != want {
		t.Fatalf("chunk total = %d, want %d", chunks, want)
	}
	// The submitter always participates, so its helper slot saw every job.
	if got := tel.Worker(p.Workers()).Jobs.Load(); got != jobs {
		t.Fatalf("submitter jobs = %d, want %d", got, jobs)
	}
}

// TestPoolTelemetryInlinePath covers the single-worker / small-job inline
// execution: the submitting goroutine's helper slot gets the chunk.
func TestPoolTelemetryInlinePath(t *testing.T) {
	p := New(1)
	defer p.Close()
	tel := &telemetry.Pool{}
	tel.Init(p.Size())
	p.SetTelemetry(tel)
	p.Run(100, 10, func(lo, hi, worker int) {})
	if got := tel.Worker(p.Workers()).Chunks.Load(); got != 1 {
		t.Fatalf("inline chunks = %d, want 1", got)
	}
	if got := tel.JobsSubmitted.Load(); got != 1 {
		t.Fatalf("JobsSubmitted = %d, want 1", got)
	}
	if tel.Worker(p.Workers()).Busy.Load() < 0 {
		t.Fatal("negative busy time")
	}
}
