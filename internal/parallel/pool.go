// Package parallel is the shared execution layer: a persistent,
// engine-lifetime worker pool that replaces the per-call goroutine spawning
// the placement and baseline engines used to do.
//
// Design notes:
//
//   - Work is distributed by an atomic chunk counter over contiguous index
//     ranges. Chunked ranges amortize the dispatch cost over many items and
//     keep adjacent items on one worker (no false sharing on dense outputs).
//   - The submitting goroutine always participates in its own job under the
//     dedicated helper id Workers(), so a job finishes even if every pool
//     worker is busy elsewhere and nested submission cannot deadlock.
//   - Worker ids are stable and dense in [0, Size()), which is what makes
//     per-worker scratch affinity possible: callers keep a slice of Size()
//     scratch states and index it with the id they are handed, eliminating
//     sync.Pool churn from hot loops.
//   - A panic in the task function aborts the job's remaining chunks and is
//     re-raised on the submitting goroutine; the pool itself survives.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"phylomem/internal/telemetry"
)

// Pool is a fixed-size set of persistent worker goroutines. The zero value
// is not usable; construct with New. A Pool is safe for concurrent use by
// multiple submitters, but Close must not race with Run.
type Pool struct {
	workers int
	jobs    chan *job
	busy    *atomic.Int64
	closed  atomic.Bool
	once    sync.Once

	// tel, when set, receives per-participant chunk counts and busy time.
	// It travels with each job (never read through p by the workers), so
	// the finalizer-based reaping of unreachable pools keeps working.
	tel atomic.Pointer[telemetry.Pool]
}

// SetTelemetry attaches a telemetry group sized to at least Size()
// participant slots (see telemetry.Pool.Init). Jobs submitted after the
// call record per-worker chunk and busy-time counts; nil detaches. Safe to
// call concurrently with Run — a job in flight keeps the group it started
// with.
func (p *Pool) SetTelemetry(t *telemetry.Pool) { p.tel.Store(t) }

// New starts a pool with the given number of workers (minimum 1). With one
// worker no goroutines are started and Run executes inline. Pools hold OS
// resources (goroutines); call Close when done — as a safety net a finalizer
// reaps pools that become unreachable without being closed.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, busy: new(atomic.Int64)}
	if workers > 1 {
		// Invites are dropped (not queued) when the channel is full, so a
		// small buffer per worker is plenty even with concurrent jobs.
		p.jobs = make(chan *job, 4*workers)
		for i := 0; i < workers; i++ {
			// The goroutine captures the channel, its id, and the shared busy
			// counter — never p itself — so an unreachable Pool can be
			// finalized while its workers are still parked on the channel.
			go workerLoop(p.jobs, i, p.busy)
		}
		runtime.SetFinalizer(p, (*Pool).Close)
	}
	return p
}

// Workers returns the number of pool worker goroutines.
func (p *Pool) Workers() int { return p.workers }

// Size returns the number of distinct worker ids Run can hand to fn:
// Workers() pool goroutines plus the submitting goroutine's helper id.
// Callers keeping per-worker state should size it to Size().
func (p *Pool) Size() int { return p.workers + 1 }

// Close shuts the worker goroutines down. Idempotent; a closed pool remains
// usable, with Run degrading to inline execution on the caller.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.closed.Store(true)
		if p.jobs != nil {
			close(p.jobs)
		}
	})
}

// BusyTime returns the cumulative wall time participants (workers and
// submitters) have spent executing job chunks. Utilization over an interval
// is the BusyTime delta divided by (wall time × Workers()).
func (p *Pool) BusyTime() time.Duration { return time.Duration(p.busy.Load()) }

// Run executes fn over the index range [0, n) split into chunks of grain
// indices (grain <= 0 picks a default that yields several chunks per
// worker). fn is called as fn(lo, hi, worker) with 0 <= lo < hi <= n and a
// worker id in [0, Size()); the ranges partition [0, n) exactly. Run returns
// when every index has been processed. If fn panics, the job's remaining
// chunks are abandoned and the first panic value is re-raised here.
func (p *Pool) Run(n, grain int, fn func(lo, hi, worker int)) {
	p.RunContext(context.Background(), n, grain, fn)
}

// RunContext is Run with cancellation: when ctx is cancelled, no further
// chunks are claimed and RunContext returns ctx.Err() once every chunk
// already in flight has finished. The ranges actually executed before a
// cancellation are always a prefix-closed subset of the full partition —
// indices are never half-processed, so callers can safely discard or retry
// the whole job. A nil error means every index was processed.
func (p *Pool) RunContext(ctx context.Context, n, grain int, fn func(lo, hi, worker int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if grain <= 0 {
		grain = n / (8 * p.workers)
		if grain < 1 {
			grain = 1
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	tel := p.tel.Load()
	tel.JobStart()
	if p.workers == 1 || n <= grain || p.closed.Load() {
		start := time.Now()
		defer func() {
			d := time.Since(start)
			p.busy.Add(int64(d))
			if w := tel.Worker(p.workers); w != nil {
				w.Job()
				w.Chunk()
				w.AddBusy(d)
			}
		}()
		fn(0, n, p.workers)
		return nil
	}
	j := &job{n: n, grain: grain, fn: fn, finished: make(chan struct{}), tel: tel}
	chunks := (n + grain - 1) / grain
	j.chunks = int64(chunks)
	if ctx.Done() != nil {
		j.ctx = ctx
	}
	invites := p.workers
	if invites > chunks-1 {
		invites = chunks - 1 // the submitter takes at least one chunk
	}
	for i := 0; i < invites; i++ {
		select {
		case p.jobs <- j:
		default: // every worker already has an invite queued
		}
	}
	j.work(p.workers, p.busy)
	<-j.finished
	if pv := j.panicVal.Load(); pv != nil {
		panic(*pv)
	}
	if j.cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// ForEach runs fn(i, worker) for every i in [0, n) through Run with the
// default grain.
func (p *Pool) ForEach(n int, fn func(i, worker int)) {
	p.Run(n, 0, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			fn(i, worker)
		}
	})
}

// ForEachContext is ForEach through RunContext: it stops claiming chunks on
// cancellation and returns ctx.Err().
func (p *Pool) ForEachContext(ctx context.Context, n int, fn func(i, worker int)) error {
	return p.RunContext(ctx, n, 0, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			fn(i, worker)
		}
	})
}

// job is one Run invocation's shared state. Chunks are claimed through the
// atomic next counter; the job is finished when the done counter has
// accounted for every chunk, at which point the claimer of the last chunk
// closes finished.
type job struct {
	n, grain  int
	chunks    int64
	next      atomic.Int64
	done      atomic.Int64
	aborted   atomic.Bool
	cancelled atomic.Bool
	panicVal  atomic.Pointer[any]
	fn        func(lo, hi, worker int)
	finished  chan struct{}
	ctx       context.Context // nil when the job is not cancellable
	tel       *telemetry.Pool // nil when telemetry is disabled
}

func workerLoop(jobs <-chan *job, id int, busy *atomic.Int64) {
	for j := range jobs {
		j.work(id, busy)
	}
}

// work claims and executes chunks until the job runs dry. Both pool workers
// and the submitting goroutine drive jobs through it. After a panic the
// remaining chunks are still claimed (so done reaches chunks and the
// submitter is released) but fn is no longer called.
func (j *job) work(worker int, busy *atomic.Int64) {
	var start time.Time
	executed := uint64(0)
	for {
		c := j.next.Add(1) - 1
		if c >= j.chunks {
			break
		}
		if start.IsZero() {
			start = time.Now()
		}
		if j.ctx != nil && !j.aborted.Load() && j.ctx.Err() != nil {
			// Cancellation aborts like a panic — remaining chunks are
			// claimed but not run — except the submitter gets ctx.Err()
			// instead of a re-raised panic.
			j.cancelled.Store(true)
			j.aborted.Store(true)
		}
		if !j.aborted.Load() {
			j.runChunk(c, worker)
			executed++
		}
		if j.done.Add(1) == j.chunks {
			close(j.finished)
		}
	}
	if !start.IsZero() {
		d := time.Since(start)
		if busy != nil {
			busy.Add(int64(d))
		}
		if w := j.tel.Worker(worker); w != nil {
			w.Job()
			w.Chunks.Add(executed)
			w.AddBusy(d)
		}
	}
}

// runChunk executes one chunk, converting a panic into job abortion: the
// first panic value is recorded for the submitter to re-raise.
func (j *job) runChunk(c int64, worker int) {
	defer func() {
		if r := recover(); r != nil {
			j.panicVal.CompareAndSwap(nil, &r)
			j.aborted.Store(true)
		}
	}()
	lo := int(c) * j.grain
	hi := lo + j.grain
	if hi > j.n {
		hi = j.n
	}
	j.fn(lo, hi, worker)
}
