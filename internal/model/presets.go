package model

import (
	"fmt"
	"math"
)

// uniformFreqs returns s equal frequencies.
func uniformFreqs(s int) []float64 {
	f := make([]float64, s)
	for i := range f {
		f[i] = 1 / float64(s)
	}
	return f
}

// symmetricFull expands the upper-triangular exchangeability list (row-major,
// i<j order) into a full s×s matrix.
func symmetricFull(s int, upper []float64) ([]float64, error) {
	want := s * (s - 1) / 2
	if len(upper) != want {
		return nil, fmt.Errorf("model: %d exchangeabilities for %d states, want %d", len(upper), s, want)
	}
	full := make([]float64, s*s)
	k := 0
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			full[i*s+j] = upper[k]
			full[j*s+i] = upper[k]
			k++
		}
	}
	return full, nil
}

// JC69 returns the Jukes–Cantor 1969 nucleotide model: equal frequencies and
// equal exchangeabilities.
func JC69() *Model {
	full, err := symmetricFull(4, []float64{1, 1, 1, 1, 1, 1})
	if err != nil {
		panic(err)
	}
	m, err := NewReversible("JC69", uniformFreqs(4), full)
	if err != nil {
		panic(err)
	}
	return m
}

// K80 returns the Kimura 1980 two-parameter model with
// transition/transversion ratio kappa and equal base frequencies.
// State order is A, C, G, T; transitions are A↔G and C↔T.
func K80(kappa float64) (*Model, error) {
	if kappa <= 0 {
		return nil, fmt.Errorf("model: K80 kappa must be positive, got %g", kappa)
	}
	// Upper triangle order: AC, AG, AT, CG, CT, GT.
	full, err := symmetricFull(4, []float64{1, kappa, 1, 1, kappa, 1})
	if err != nil {
		return nil, err
	}
	return NewReversible("K80", uniformFreqs(4), full)
}

// HKY85 returns the Hasegawa–Kishino–Yano 1985 model with arbitrary base
// frequencies and transition/transversion ratio kappa.
func HKY85(freqs []float64, kappa float64) (*Model, error) {
	if kappa <= 0 {
		return nil, fmt.Errorf("model: HKY85 kappa must be positive, got %g", kappa)
	}
	full, err := symmetricFull(4, []float64{1, kappa, 1, 1, kappa, 1})
	if err != nil {
		return nil, err
	}
	return NewReversible("HKY85", freqs, full)
}

// GTR returns the general time-reversible nucleotide model. rates are the
// six upper-triangular exchangeabilities in order AC, AG, AT, CG, CT, GT.
func GTR(freqs, rates []float64) (*Model, error) {
	full, err := symmetricFull(4, rates)
	if err != nil {
		return nil, err
	}
	return NewReversible("GTR", freqs, full)
}

// PoissonAA returns the 20-state amino-acid analogue of JC69: equal
// frequencies and exchangeabilities.
func PoissonAA() *Model {
	upper := make([]float64, 20*19/2)
	for i := range upper {
		upper[i] = 1
	}
	full, err := symmetricFull(20, upper)
	if err != nil {
		panic(err)
	}
	m, err := NewReversible("PoissonAA", uniformFreqs(20), full)
	if err != nil {
		panic(err)
	}
	return m
}

// SyntheticAA returns a deterministic pseudo-empirical amino-acid model:
// exchangeabilities spanning roughly three orders of magnitude and skewed
// stationary frequencies, generated from a fixed closed-form formula. It
// stands in for empirical matrices such as LG or WAG (whose coefficient
// tables are external data): placement cost and memory behaviour depend only
// on the 20-state dimensionality and the heterogeneity of the matrix, both
// of which this model reproduces. See DESIGN.md ("Substitutions").
func SyntheticAA() *Model {
	const s = 20
	upper := make([]float64, s*(s-1)/2)
	k := 0
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			// Smooth deterministic variation in (e^-3, e^3).
			v := math.Exp(3 * math.Sin(float64(3*i+7*j)+0.5))
			upper[k] = v
			k++
		}
	}
	freqs := make([]float64, s)
	sum := 0.0
	for i := range freqs {
		freqs[i] = 0.5 + 0.45*math.Sin(float64(2*i)+1)
		sum += freqs[i]
	}
	for i := range freqs {
		freqs[i] /= sum
	}
	full, err := symmetricFull(s, upper)
	if err != nil {
		panic(err)
	}
	m, err := NewReversible("SyntheticAA", freqs, full)
	if err != nil {
		panic(err)
	}
	return m
}

// F81 returns the Felsenstein 1981 model: arbitrary base frequencies with
// equal exchangeabilities.
func F81(freqs []float64) (*Model, error) {
	full, err := symmetricFull(4, []float64{1, 1, 1, 1, 1, 1})
	if err != nil {
		return nil, err
	}
	return NewReversible("F81", freqs, full)
}

// TN93 returns the Tamura–Nei 1993 model: separate purine (A↔G) and
// pyrimidine (C↔T) transition rates kappaR and kappaY over arbitrary base
// frequencies.
func TN93(freqs []float64, kappaR, kappaY float64) (*Model, error) {
	if kappaR <= 0 || kappaY <= 0 {
		return nil, fmt.Errorf("model: TN93 kappas must be positive, got %g/%g", kappaR, kappaY)
	}
	// Upper triangle order: AC, AG, AT, CG, CT, GT.
	full, err := symmetricFull(4, []float64{1, kappaR, 1, 1, kappaY, 1})
	if err != nil {
		return nil, err
	}
	return NewReversible("TN93", freqs, full)
}
