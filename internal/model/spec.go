package model

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a model and rate heterogeneity from a compact spec string
// in the RAxML-NG style:
//
//	JC            Jukes–Cantor
//	K80           Kimura 2-parameter (kappa 2 by default)
//	K80{4}        ... with kappa 4
//	HKY           HKY85 with the given frequencies (or uniform)
//	F81           Felsenstein 81 (frequencies only)
//	TN93          Tamura–Nei (kappaR 2, kappaY 2 by default)
//	TN93{3/5}     ... with explicit kappaR/kappaY
//	GTR           general time-reversible (unit exchangeabilities)
//	GTR{a/b/c/d/e/f}   ... with explicit exchangeabilities (AC/AG/AT/CG/CT/GT)
//	POISSON       20-state uniform amino-acid model
//	SYNAA         the synthetic empirical-like amino-acid model
//
// followed by an optional rate-heterogeneity suffix:
//
//	+G            discrete Gamma, 4 categories, alpha 1
//	+G8           ... 8 categories
//	+G4{0.5}      ... alpha 0.5
//
// freqs supplies stationary frequencies for HKY/GTR (nil = uniform).
func ParseSpec(spec string, freqs []float64) (*Model, *RateHet, error) {
	name := spec
	ratePart := ""
	if i := strings.Index(spec, "+"); i >= 0 {
		name, ratePart = spec[:i], spec[i+1:]
	}
	base, args, err := splitArgs(name)
	if err != nil {
		return nil, nil, err
	}

	nt4 := func() []float64 {
		if freqs != nil {
			return freqs
		}
		return uniformFreqs(4)
	}
	var m *Model
	switch strings.ToUpper(base) {
	case "JC", "JC69":
		m = JC69()
	case "K80":
		kappa := 2.0
		if len(args) == 1 {
			kappa = args[0]
		} else if len(args) > 1 {
			return nil, nil, fmt.Errorf("model: K80 takes at most one parameter (kappa), got %d", len(args))
		}
		m, err = K80(kappa)
	case "HKY", "HKY85":
		kappa := 2.0
		if len(args) == 1 {
			kappa = args[0]
		} else if len(args) > 1 {
			return nil, nil, fmt.Errorf("model: HKY takes at most one parameter (kappa), got %d", len(args))
		}
		m, err = HKY85(nt4(), kappa)
	case "F81":
		if len(args) != 0 {
			return nil, nil, fmt.Errorf("model: F81 takes no parameters")
		}
		m, err = F81(nt4())
	case "TN93":
		kR, kY := 2.0, 2.0
		switch len(args) {
		case 0:
		case 2:
			kR, kY = args[0], args[1]
		default:
			return nil, nil, fmt.Errorf("model: TN93 takes 0 or 2 parameters (kappaR/kappaY), got %d", len(args))
		}
		m, err = TN93(nt4(), kR, kY)
	case "GTR":
		rates := []float64{1, 1, 1, 1, 1, 1}
		if len(args) == 6 {
			rates = args
		} else if len(args) != 0 {
			return nil, nil, fmt.Errorf("model: GTR takes 0 or 6 exchangeabilities, got %d", len(args))
		}
		m, err = GTR(nt4(), rates)
	case "POISSON":
		m = PoissonAA()
	case "SYNAA":
		m = SyntheticAA()
	default:
		return nil, nil, fmt.Errorf("model: unknown model %q", base)
	}
	if err != nil {
		return nil, nil, err
	}

	rates := UniformRates()
	if ratePart != "" {
		rates, err = parseRateSpec(ratePart)
		if err != nil {
			return nil, nil, err
		}
	}
	return m, rates, nil
}

// splitArgs parses "NAME{a/b/c}" into the name and numeric arguments.
func splitArgs(s string) (string, []float64, error) {
	open := strings.Index(s, "{")
	if open < 0 {
		return s, nil, nil
	}
	if !strings.HasSuffix(s, "}") {
		return "", nil, fmt.Errorf("model: unterminated parameter list in %q", s)
	}
	name := s[:open]
	body := s[open+1 : len(s)-1]
	var args []float64
	for _, tok := range strings.Split(body, "/") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return "", nil, fmt.Errorf("model: invalid parameter %q in %q", tok, s)
		}
		args = append(args, v)
	}
	return name, args, nil
}

// parseRateSpec parses "G", "G8", "G4{0.5}".
func parseRateSpec(s string) (*RateHet, error) {
	if !strings.HasPrefix(strings.ToUpper(s), "G") {
		return nil, fmt.Errorf("model: unknown rate heterogeneity %q (only +G is supported)", s)
	}
	rest, args, err := splitArgs(s)
	if err != nil {
		return nil, err
	}
	cats := 4
	if digits := rest[1:]; digits != "" {
		cats, err = strconv.Atoi(digits)
		if err != nil || cats < 1 {
			return nil, fmt.Errorf("model: invalid Gamma category count in %q", s)
		}
	}
	alpha := 1.0
	if len(args) == 1 {
		alpha = args[0]
	} else if len(args) > 1 {
		return nil, fmt.Errorf("model: +G takes at most one parameter (alpha), got %d", len(args))
	}
	return GammaRates(alpha, cats)
}
