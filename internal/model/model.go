// Package model implements time-reversible substitution models for
// nucleotide and amino-acid data, including their eigendecomposition and
// transition-probability (P) matrices, plus discrete-Gamma rate
// heterogeneity. This is the statistical-model layer of the libpll-2
// equivalent engine in internal/phylo.
package model

import (
	"fmt"
	"math"

	"phylomem/internal/numeric"
)

// Model is a time-reversible continuous-time Markov substitution model with
// a precomputed eigendecomposition of its (symmetrized) rate matrix. The
// rate matrix is normalized so that one unit of branch length equals one
// expected substitution per site.
type Model struct {
	name   string
	states int
	freqs  []float64

	// Eigen system: P(t) = right · diag(exp(λ t)) · left, where
	// right = Π^{-1/2} V and left = Vᵀ Π^{1/2} for the symmetric
	// B = Π^{1/2} Q Π^{-1/2} = V Λ Vᵀ.
	evals []float64
	right []float64 // states×states row-major
	left  []float64 // states×states row-major
}

// Name returns the model's name (e.g. "GTR").
func (m *Model) Name() string { return m.name }

// States returns the number of character states.
func (m *Model) States() int { return m.states }

// Freqs returns the stationary state frequencies π (not a copy; callers must
// not modify it).
func (m *Model) Freqs() []float64 { return m.freqs }

// NewReversible builds a reversible model from stationary frequencies and
// symmetric exchangeabilities. exch is a full states×states row-major matrix
// whose diagonal is ignored; it must be symmetric with positive off-diagonal
// entries. freqs must be positive and sum to 1 (within tolerance; they are
// renormalized).
func NewReversible(name string, freqs, exch []float64) (*Model, error) {
	s := len(freqs)
	if s < 2 {
		return nil, fmt.Errorf("model: need at least 2 states, got %d", s)
	}
	if len(exch) != s*s {
		return nil, fmt.Errorf("model: exchangeability matrix has %d entries, want %d", len(exch), s*s)
	}
	sum := 0.0
	for i, f := range freqs {
		if f <= 0 || math.IsNaN(f) {
			return nil, fmt.Errorf("model: frequency %d is %g, must be positive", i, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("model: frequencies sum to %g, want 1", sum)
	}
	pi := make([]float64, s)
	for i, f := range freqs {
		pi[i] = f / sum
	}
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			if exch[i*s+j] <= 0 {
				return nil, fmt.Errorf("model: exchangeability (%d,%d) = %g, must be positive", i, j, exch[i*s+j])
			}
			if math.Abs(exch[i*s+j]-exch[j*s+i]) > 1e-9*exch[i*s+j] {
				return nil, fmt.Errorf("model: exchangeabilities not symmetric at (%d,%d)", i, j)
			}
		}
	}

	// Build Q_ij = S_ij π_j, diagonal = -rowsum; then normalize the expected
	// rate Σ_i π_i (-Q_ii) to 1.
	q := numeric.NewMatrix(s, s)
	for i := 0; i < s; i++ {
		rowSum := 0.0
		for j := 0; j < s; j++ {
			if i == j {
				continue
			}
			v := exch[i*s+j] * pi[j]
			q.Set(i, j, v)
			rowSum += v
		}
		q.Set(i, i, -rowSum)
	}
	rate := 0.0
	for i := 0; i < s; i++ {
		rate -= pi[i] * q.At(i, i)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("model: degenerate rate matrix (rate %g)", rate)
	}
	for i := range q.Data {
		q.Data[i] /= rate
	}

	// Symmetrize: B = Π^{1/2} Q Π^{-1/2}.
	b := numeric.NewMatrix(s, s)
	sqrtPi := make([]float64, s)
	for i := range pi {
		sqrtPi[i] = math.Sqrt(pi[i])
	}
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			b.Set(i, j, sqrtPi[i]*q.At(i, j)/sqrtPi[j])
		}
	}
	// Force exact symmetry against rounding before the Jacobi sweep.
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			v := 0.5 * (b.At(i, j) + b.At(j, i))
			b.Set(i, j, v)
			b.Set(j, i, v)
		}
	}
	vals, vecs, err := numeric.SymEig(b)
	if err != nil {
		return nil, fmt.Errorf("model: eigendecomposition failed: %w", err)
	}
	m := &Model{name: name, states: s, freqs: pi, evals: vals,
		right: make([]float64, s*s), left: make([]float64, s*s)}
	for i := 0; i < s; i++ {
		for k := 0; k < s; k++ {
			m.right[i*s+k] = vecs.At(i, k) / sqrtPi[i]
			m.left[k*s+i] = vecs.At(i, k) * sqrtPi[i]
		}
	}
	return m, nil
}

// TransitionMatrix fills dst (length states²) with P(t·rate), the transition
// probabilities over branch length t scaled by a rate multiplier. Small
// negative entries from rounding are clamped to zero.
func (m *Model) TransitionMatrix(dst []float64, t, rate float64) {
	s := m.states
	if len(dst) != s*s {
		panic(fmt.Sprintf("model: TransitionMatrix dst has %d entries, want %d", len(dst), s*s))
	}
	tt := t * rate
	if tt < 0 {
		tt = 0
	}
	// exps_k = e^{λ_k t}
	var expsArr [20]float64
	exps := expsArr[:s]
	for k := 0; k < s; k++ {
		exps[k] = math.Exp(m.evals[k] * tt)
	}
	for i := 0; i < s; i++ {
		ri := m.right[i*s : i*s+s]
		di := dst[i*s : i*s+s]
		for j := range di {
			di[j] = 0
		}
		for k := 0; k < s; k++ {
			w := ri[k] * exps[k]
			lk := m.left[k*s : k*s+s]
			for j := 0; j < s; j++ {
				di[j] += w * lk[j]
			}
		}
		for j := 0; j < s; j++ {
			if di[j] < 0 {
				di[j] = 0
			}
		}
	}
}

// PSize returns the number of float64 entries in one P matrix.
func (m *Model) PSize() int { return m.states * m.states }

// RateHet describes among-site rate heterogeneity as discrete categories
// with rates and (prior) weights.
type RateHet struct {
	Rates   []float64
	Weights []float64
}

// UniformRates returns a single-category (no heterogeneity) RateHet.
func UniformRates() *RateHet {
	return &RateHet{Rates: []float64{1}, Weights: []float64{1}}
}

// GammaRates returns the k-category discrete Gamma approximation with shape
// alpha (mean rate 1, equal category weights).
func GammaRates(alpha float64, k int) (*RateHet, error) {
	rates, err := numeric.DiscreteGammaRates(alpha, k)
	if err != nil {
		return nil, err
	}
	w := make([]float64, k)
	for i := range w {
		w[i] = 1 / float64(k)
	}
	return &RateHet{Rates: rates, Weights: w}, nil
}

// NumRates returns the number of rate categories.
func (r *RateHet) NumRates() int { return len(r.Rates) }
