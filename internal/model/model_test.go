package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allModels(t *testing.T) []*Model {
	t.Helper()
	k80, err := K80(2.5)
	if err != nil {
		t.Fatal(err)
	}
	hky, err := HKY85([]float64{0.3, 0.2, 0.2, 0.3}, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	gtr, err := GTR([]float64{0.35, 0.15, 0.25, 0.25}, []float64{1.2, 3.1, 0.8, 0.9, 2.7, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	return []*Model{JC69(), k80, hky, gtr, PoissonAA(), SyntheticAA()}
}

func pmatrix(m *Model, t, rate float64) []float64 {
	p := make([]float64, m.PSize())
	m.TransitionMatrix(p, t, rate)
	return p
}

func TestTransitionMatrixRowsSumToOne(t *testing.T) {
	for _, m := range allModels(t) {
		for _, bl := range []float64{0, 1e-6, 0.01, 0.1, 1, 10, 100} {
			p := pmatrix(m, bl, 1)
			s := m.States()
			for i := 0; i < s; i++ {
				row := 0.0
				for j := 0; j < s; j++ {
					v := p[i*s+j]
					if v < 0 || v > 1+1e-9 {
						t.Fatalf("%s P(%g)[%d,%d] = %g out of [0,1]", m.Name(), bl, i, j, v)
					}
					row += v
				}
				if math.Abs(row-1) > 1e-9 {
					t.Fatalf("%s P(%g) row %d sums to %g", m.Name(), bl, i, row)
				}
			}
		}
	}
}

func TestTransitionMatrixAtZeroIsIdentity(t *testing.T) {
	for _, m := range allModels(t) {
		p := pmatrix(m, 0, 1)
		s := m.States()
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(p[i*s+j]-want) > 1e-9 {
					t.Fatalf("%s P(0)[%d,%d] = %g, want %g", m.Name(), i, j, p[i*s+j], want)
				}
			}
		}
	}
}

func TestTransitionMatrixLongBranchIsStationary(t *testing.T) {
	for _, m := range allModels(t) {
		p := pmatrix(m, 500, 1)
		s := m.States()
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				if math.Abs(p[i*s+j]-m.Freqs()[j]) > 1e-6 {
					t.Fatalf("%s P(∞)[%d,%d] = %g, want π_j = %g", m.Name(), i, j, p[i*s+j], m.Freqs()[j])
				}
			}
		}
	}
}

func TestDetailedBalance(t *testing.T) {
	for _, m := range allModels(t) {
		p := pmatrix(m, 0.37, 1)
		s := m.States()
		pi := m.Freqs()
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				lhs, rhs := pi[i]*p[i*s+j], pi[j]*p[j*s+i]
				if math.Abs(lhs-rhs) > 1e-10 {
					t.Fatalf("%s detailed balance violated at (%d,%d): %g vs %g", m.Name(), i, j, lhs, rhs)
				}
			}
		}
	}
}

func TestChapmanKolmogorov(t *testing.T) {
	for _, m := range allModels(t) {
		s := m.States()
		p1 := pmatrix(m, 0.2, 1)
		p2 := pmatrix(m, 0.5, 1)
		p3 := pmatrix(m, 0.7, 1)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				sum := 0.0
				for k := 0; k < s; k++ {
					sum += p1[i*s+k] * p2[k*s+j]
				}
				if math.Abs(sum-p3[i*s+j]) > 1e-9 {
					t.Fatalf("%s Chapman-Kolmogorov violated at (%d,%d): %g vs %g", m.Name(), i, j, sum, p3[i*s+j])
				}
			}
		}
	}
}

func TestRateScalingEquivalence(t *testing.T) {
	m := JC69()
	a := pmatrix(m, 0.3, 2.0)
	b := pmatrix(m, 0.6, 1.0)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("P(0.3, rate 2) != P(0.6): %g vs %g", a[i], b[i])
		}
	}
}

func TestExpectedRateIsOne(t *testing.T) {
	// d/dt Σ_i π_i P_ii(t) at t→0 should be -1 for a normalized model.
	for _, m := range allModels(t) {
		const h = 1e-7
		p := pmatrix(m, h, 1)
		s := m.States()
		diag := 0.0
		for i := 0; i < s; i++ {
			diag += m.Freqs()[i] * p[i*s+i]
		}
		rate := (1 - diag) / h
		if math.Abs(rate-1) > 1e-4 {
			t.Fatalf("%s expected substitution rate = %g, want 1", m.Name(), rate)
		}
	}
}

func TestJC69ClosedForm(t *testing.T) {
	// JC69 has the closed form P_ii = 1/4 + 3/4 e^{-4t/3}.
	m := JC69()
	for _, bl := range []float64{0.05, 0.2, 1.0} {
		p := pmatrix(m, bl, 1)
		same := 0.25 + 0.75*math.Exp(-4*bl/3)
		diff := 0.25 - 0.25*math.Exp(-4*bl/3)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := diff
				if i == j {
					want = same
				}
				if math.Abs(p[i*4+j]-want) > 1e-10 {
					t.Fatalf("JC69 P(%g)[%d,%d] = %g, want %g", bl, i, j, p[i*4+j], want)
				}
			}
		}
	}
}

func TestK80TransitionBias(t *testing.T) {
	m, err := K80(8)
	if err != nil {
		t.Fatal(err)
	}
	p := pmatrix(m, 0.2, 1)
	// A→G (transition, indices 0→2) must exceed A→C (transversion, 0→1).
	if p[0*4+2] <= p[0*4+1] {
		t.Fatalf("K80 transition %g not greater than transversion %g", p[0*4+2], p[0*4+1])
	}
}

func TestNewReversibleValidation(t *testing.T) {
	if _, err := NewReversible("x", []float64{1}, []float64{1}); err == nil {
		t.Error("single state accepted")
	}
	if _, err := NewReversible("x", []float64{0.5, 0.5}, []float64{0, 1, 1, 0, 0, 0}); err == nil {
		t.Error("wrong exch size accepted")
	}
	if _, err := NewReversible("x", []float64{0.5, 0.6}, []float64{0, 1, 1, 0}); err == nil {
		t.Error("frequencies summing to 1.1 accepted")
	}
	if _, err := NewReversible("x", []float64{-0.5, 1.5}, []float64{0, 1, 1, 0}); err == nil {
		t.Error("negative frequency accepted")
	}
	if _, err := NewReversible("x", []float64{0.5, 0.5}, []float64{0, 1, 2, 0}); err == nil {
		t.Error("asymmetric exchangeabilities accepted")
	}
	if _, err := NewReversible("x", []float64{0.5, 0.5}, []float64{0, -1, -1, 0}); err == nil {
		t.Error("negative exchangeability accepted")
	}
	if _, err := K80(0); err == nil {
		t.Error("K80 kappa=0 accepted")
	}
	if _, err := HKY85([]float64{0.25, 0.25, 0.25, 0.25}, -1); err == nil {
		t.Error("HKY85 negative kappa accepted")
	}
	if _, err := GTR([]float64{0.25, 0.25, 0.25, 0.25}, []float64{1, 1, 1}); err == nil {
		t.Error("GTR with 3 rates accepted")
	}
}

func TestGTRRandomProperty(t *testing.T) {
	// Property: random GTR models always produce stochastic P matrices
	// satisfying detailed balance.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		freqs := make([]float64, 4)
		sum := 0.0
		for i := range freqs {
			freqs[i] = 0.05 + r.Float64()
			sum += freqs[i]
		}
		for i := range freqs {
			freqs[i] /= sum
		}
		rates := make([]float64, 6)
		for i := range rates {
			rates[i] = 0.1 + 5*r.Float64()
		}
		m, err := GTR(freqs, rates)
		if err != nil {
			return false
		}
		bl := 0.01 + r.Float64()
		p := make([]float64, 16)
		m.TransitionMatrix(p, bl, 1)
		for i := 0; i < 4; i++ {
			row := 0.0
			for j := 0; j < 4; j++ {
				row += p[i*4+j]
				if math.Abs(freqs[i]*p[i*4+j]-freqs[j]*p[j*4+i]) > 1e-9 {
					return false
				}
			}
			if math.Abs(row-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaRates(t *testing.T) {
	rh, err := GammaRates(0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rh.NumRates() != 4 {
		t.Fatalf("NumRates = %d", rh.NumRates())
	}
	wsum, mean := 0.0, 0.0
	for i := range rh.Rates {
		wsum += rh.Weights[i]
		mean += rh.Weights[i] * rh.Rates[i]
	}
	if math.Abs(wsum-1) > 1e-12 || math.Abs(mean-1) > 1e-9 {
		t.Fatalf("weights sum %g, mean rate %g", wsum, mean)
	}
	u := UniformRates()
	if u.NumRates() != 1 || u.Rates[0] != 1 || u.Weights[0] != 1 {
		t.Fatalf("UniformRates = %+v", u)
	}
}

func TestSyntheticAAHeterogeneous(t *testing.T) {
	m := SyntheticAA()
	if m.States() != 20 {
		t.Fatalf("states = %d", m.States())
	}
	// Frequencies must be non-uniform (that is the point of the synthetic
	// empirical stand-in).
	min, max := 1.0, 0.0
	for _, f := range m.Freqs() {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if max/min < 2 {
		t.Fatalf("SyntheticAA frequencies too uniform: min %g max %g", min, max)
	}
	// Deterministic across calls.
	m2 := SyntheticAA()
	p1 := pmatrix(m, 0.1, 1)
	p2 := pmatrix(m2, 0.1, 1)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("SyntheticAA is not deterministic")
		}
	}
}
