package model

import (
	"math"
	"testing"
)

func TestParseSpecBasics(t *testing.T) {
	cases := []struct {
		spec   string
		states int
		nrates int
	}{
		{"JC", 4, 1},
		{"jc69", 4, 1},
		{"K80", 4, 1},
		{"K80{4.5}", 4, 1},
		{"HKY", 4, 1},
		{"GTR", 4, 1},
		{"GTR{1/2/3/4/5/6}", 4, 1},
		{"POISSON", 20, 1},
		{"SYNAA", 20, 1},
		{"JC+G", 4, 4},
		{"GTR+G8", 4, 8},
		{"GTR+G4{0.5}", 4, 4},
	}
	for _, c := range cases {
		m, r, err := ParseSpec(c.spec, nil)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if m.States() != c.states {
			t.Errorf("%q: states = %d, want %d", c.spec, m.States(), c.states)
		}
		if r.NumRates() != c.nrates {
			t.Errorf("%q: rates = %d, want %d", c.spec, r.NumRates(), c.nrates)
		}
	}
}

func TestParseSpecParameters(t *testing.T) {
	// K80 with a large kappa must show transition bias.
	m, _, err := ParseSpec("K80{10}", nil)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)
	m.TransitionMatrix(p, 0.1, 1)
	if p[0*4+2] <= p[0*4+1] {
		t.Fatal("K80{10} lost its transition bias")
	}
	// Gamma alpha propagates: smaller alpha = more heterogeneous rates.
	_, rLow, err := ParseSpec("JC+G4{0.2}", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rHigh, err := ParseSpec("JC+G4{20}", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rLow.Rates[0] >= rHigh.Rates[0] {
		t.Fatalf("alpha ordering wrong: %v vs %v", rLow.Rates, rHigh.Rates)
	}
}

func TestParseSpecFreqs(t *testing.T) {
	freqs := []float64{0.4, 0.1, 0.1, 0.4}
	m, _, err := ParseSpec("GTR", freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range m.Freqs() {
		if math.Abs(f-freqs[i]) > 1e-12 {
			t.Fatalf("freqs not applied: %v", m.Freqs())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"", "WAG", "GTR{1/2}", "K80{1/2}", "HKY{1/2/3}", "JC+R4",
		"GTR{1/2/3/4/5/x}", "JC+G{1/2}", "JC+Gx", "GTR{1/2/3",
	} {
		if _, _, err := ParseSpec(bad, nil); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestTN93AndF81(t *testing.T) {
	m, _, err := ParseSpec("TN93{6/2}", []float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)
	m.TransitionMatrix(p, 0.1, 1)
	// Purine transition (A->G) outpaces pyrimidine transition (C->T) with
	// kappaR > kappaY (frequencies chosen symmetric so the comparison is
	// clean: piG == piT).
	if p[0*4+2] <= p[1*4+3] {
		t.Fatalf("TN93 kappaR bias lost: A->G %g vs C->T %g", p[0*4+2], p[1*4+3])
	}
	if _, _, err := ParseSpec("TN93{1}", nil); err == nil {
		t.Fatal("TN93 with 1 arg accepted")
	}
	f81, _, err := ParseSpec("F81", []float64{0.4, 0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	f81.TransitionMatrix(p, 100, 1)
	for j, want := range []float64{0.4, 0.1, 0.2, 0.3} {
		if math.Abs(p[j]-want) > 1e-6 {
			t.Fatalf("F81 stationary distribution wrong: %v", p[:4])
		}
	}
	if _, _, err := ParseSpec("F81{1}", nil); err == nil {
		t.Fatal("F81 with args accepted")
	}
}
