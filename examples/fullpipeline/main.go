// Full pipeline: simulate a dataset with known parameters, ML-fit the model
// and branch lengths on the reference (the RAxML-NG step EPA-NG expects to
// have happened), place the queries under a memory ceiling, and evaluate the
// result: placement accuracy against the simulator's true origins, EDPL
// uncertainty, and the placement-mass hot spots.
//
//	go run ./examples/fullpipeline
package main

import (
	"fmt"
	"log"

	"phylomem/internal/analyze"
	"phylomem/internal/experiments"
	"phylomem/internal/memacct"
	"phylomem/internal/mlfit"
	"phylomem/internal/model"
	"phylomem/internal/phylo"
	"phylomem/internal/placement"
	"phylomem/internal/seq"
	"phylomem/internal/workload"
)

func main() {
	// 1. Simulate: GTR+Γ4 with alpha 0.6 and a transition bias.
	gtr, err := model.GTR([]float64{0.3, 0.2, 0.2, 0.3}, []float64{1, 3.5, 1, 1, 3.5, 1})
	if err != nil {
		log.Fatal(err)
	}
	rates, err := model.GammaRates(0.6, 4)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := workload.Simulate(workload.SimConfig{
		Name: "pipeline", Leaves: 40, Sites: 600, NumQueries: 120,
		Alphabet: seq.DNA, Model: gtr, Rates: rates, Seed: 2021,
		QueryCoverage: 0.6, QueryDivergence: 0.08,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %d taxa, %d sites, %d read-like queries (alpha=0.6)\n",
		ds.Tree.NumLeaves(), ds.RefMSA.Width(), len(ds.Queries))

	// 2. Fit: start from JC-ish parameters and let mlfit recover the truth.
	fit, err := mlfit.Fit(ds.Tree, ds.RefMSA, nil, 1.0, 4, mlfit.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit: logL %.2f -> %.2f, alpha %.3f (simulated 0.6), %d likelihood evaluations\n",
		fit.StartLL, fit.LogLik, fit.Alpha, fit.Evaluations)

	// 3. Place under a memory ceiling with the fitted model.
	comp, err := seq.Compress(ds.RefMSA)
	if err != nil {
		log.Fatal(err)
	}
	part, err := phylo.NewPartition(fit.Model, fit.Rates, comp, ds.Tree)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := placement.EncodeQueries(ds.Alphabet, ds.Queries, ds.RefMSA.Width())
	if err != nil {
		log.Fatal(err)
	}
	cfg := placement.DefaultConfig()
	cfg.ChunkSize = 40
	prep := &experiments.Prepared{Dataset: ds, Tree: ds.Tree, Part: part, Queries: queries}
	cfg.MaxMem = prep.ReferenceBytes(cfg) / 2
	eng, err := placement.New(part, ds.Tree, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Place(queries)
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("placed %d queries under %s (AMC=%v, lookup=%v, %d recomputes)\n",
		st.QueriesPlaced, memacct.FormatBytes(cfg.MaxMem), st.AMC, st.LookupEnabled, st.CLVStats.Recomputes)

	// 4. Analyze: accuracy against the simulator's truth + uncertainty.
	acc, err := analyze.Accuracy(ds.Tree, res.Queries, ds.QueryOrigins)
	if err != nil {
		log.Fatal(err)
	}
	sum := analyze.Summarize(ds.Tree, res.Queries)
	fmt.Printf("\naccuracy: mean node distance to true origin %.3f\n", acc.MeanNodeDist)
	fmt.Printf("          %d/%d placements within one node of the truth\n",
		acc.Histogram[0]+acc.Histogram[1], acc.Queries)
	fmt.Printf("uncertainty: mean best LWR %.3f, mean EDPL %.4f\n", sum.MeanBestLWR, sum.MeanEDPL)
	fmt.Println("hottest edges by placement mass:")
	for i, em := range sum.MassTopEdges {
		if i >= 5 {
			break
		}
		fmt.Printf("  edge %3d  mass %6.2f\n", em.Edge, em.Mass)
	}
}
