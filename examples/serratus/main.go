// Serratus-style run: a wide amino-acid alignment (Coronaviridae RdRP-like)
// with few full-length queries, demonstrating 20-state placement and the
// across-site parallel precompute that wide alignments reward (the paper's
// Fig. 7 finding).
//
//	go run ./examples/serratus
package main

import (
	"fmt"
	"log"
	"time"

	"phylomem/internal/experiments"
	"phylomem/internal/placement"
	"phylomem/internal/workload"
)

func main() {
	ds, err := workload.Serratus(24, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d leaves, %d AA sites, %d queries\n\n",
		ds.Name, ds.Tree.NumLeaves(), ds.RefMSA.Width(), len(ds.Queries))

	prep, err := experiments.Prepare(ds)
	if err != nil {
		log.Fatal(err)
	}

	base := placement.DefaultConfig()
	base.ChunkSize = 64
	base.MaxMem = prep.MinFeasibleBytes(base) // fullest memory saving

	// Asynchronous precompute (the shipped parallelization) versus the
	// experimental synchronous across-site scheme.
	for _, mode := range []struct {
		name string
		mut  func(*placement.Config)
	}{
		{"async precompute, 4 workers", func(c *placement.Config) { c.Threads = 4 }},
		{"across-site sync precompute, 4 workers", func(c *placement.Config) {
			c.Threads = 4
			c.SyncPrecompute = true
			c.SiteWorkers = 4
		}},
	} {
		cfg := base
		mode.mut(&cfg)
		start := time.Now()
		eng, err := placement.New(prep.Part, prep.Tree, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Place(prep.Queries)
		if err != nil {
			log.Fatal(err)
		}
		st := eng.Stats()
		fmt.Printf("%-40s %8v  (threads used: %d, recomputes: %d)\n",
			mode.name, time.Since(start).Round(time.Millisecond), st.ThreadsUsed, st.CLVStats.Recomputes)
		if len(res.Queries) != len(prep.Queries) {
			log.Fatalf("lost queries: %d != %d", len(res.Queries), len(prep.Queries))
		}
	}

	fmt.Println("\nWide alignments are the favourable case for across-site parallelism;")
	fmt.Println("on narrow alignments the paper found it can even be detrimental.")
}
