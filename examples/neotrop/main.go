// Neotrop-style run: a soil-microbiome workload with many fragmentary
// 16S-read queries, placed in chunks under a memory ceiling — the paper's
// headline use case. Prints the budget plan, per-phase timings, and the CLV
// recomputation statistics that the memory/runtime trade-off is made of.
//
//	go run ./examples/neotrop
package main

import (
	"fmt"
	"log"

	"phylomem/internal/experiments"
	"phylomem/internal/memacct"
	"phylomem/internal/placement"
	"phylomem/internal/workload"
)

func main() {
	// A scaled-down neotrop: same shape (many read-like queries, moderate
	// NT tree), laptop-sized.
	ds, err := workload.Neotrop(32, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d leaves, %d sites, %d queries (%s)\n\n",
		ds.Name, ds.Tree.NumLeaves(), ds.RefMSA.Width(), len(ds.Queries), ds.Type())

	prep, err := experiments.Prepare(ds)
	if err != nil {
		log.Fatal(err)
	}

	cfg := placement.DefaultConfig()
	cfg.ChunkSize = 150 // the paper's 5000, scaled

	// Budget: two thirds of what the reference mode would need.
	ref := prep.ReferenceBytes(cfg)
	cfg.MaxMem = ref * 2 / 3
	fmt.Printf("reference footprint %s, limiting to %s\n",
		memacct.FormatBytes(ref), memacct.FormatBytes(cfg.MaxMem))

	eng, err := placement.New(prep.Part, prep.Tree, cfg)
	if err != nil {
		log.Fatal(err)
	}
	plan := eng.Plan()
	fmt.Printf("plan: AMC=%v, lookup=%v, %d/%d CLV slots, block size %d\n\n",
		plan.AMC, plan.LookupEnabled, plan.Slots, prep.Tree.NumInnerCLVs(), plan.BlockSize)

	res, err := eng.Place(prep.Queries)
	if err != nil {
		log.Fatal(err)
	}

	st := eng.Stats()
	fmt.Printf("placed %d queries in %d chunks\n", st.QueriesPlaced, st.ChunksProcessed)
	fmt.Printf("phase1 (pre-placement) %v, phase2 (thorough) %v\n", st.Phase1, st.Phase2)
	fmt.Printf("CLV recomputes %d, slot hits %d, evictions %d\n",
		st.CLVStats.Recomputes, st.CLVStats.Hits, st.CLVStats.Evictions)
	fmt.Printf("accounted peak: %s (limit %s)\n\n",
		memacct.FormatBytes(st.PeakBytes), memacct.FormatBytes(cfg.MaxMem))

	// Summarize placement quality: how decisive were the best placements?
	decisive := 0
	for _, q := range res.Queries {
		if q.Placements[0].LikeWeightRatio > 0.5 {
			decisive++
		}
	}
	fmt.Printf("%d/%d queries placed with LWR > 0.5\n", decisive, len(res.Queries))
}
