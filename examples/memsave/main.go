// Memory/runtime trade-off sweep: a miniature of the paper's Fig. 3. Runs
// the same placement workload under a descending sequence of memory limits
// and prints how runtime, the lookup table, and CLV recomputation respond —
// including the characteristic cliff when the lookup table no longer fits.
//
//	go run ./examples/memsave
package main

import (
	"fmt"
	"log"
	"time"

	"phylomem/internal/experiments"
	"phylomem/internal/memacct"
	"phylomem/internal/placement"
	"phylomem/internal/workload"
)

func main() {
	ds, err := workload.ProRef(48, 3)
	if err != nil {
		log.Fatal(err)
	}
	prep, err := experiments.Prepare(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d leaves (%d CLVs), %d sites, %d queries\n\n",
		ds.Name, ds.Tree.NumLeaves(), ds.Tree.NumInnerCLVs(), ds.RefMSA.Width(), len(prep.Queries))

	cfg := placement.DefaultConfig()
	cfg.ChunkSize = 25
	ref := prep.ReferenceBytes(cfg)
	min := prep.MinFeasibleBytes(cfg)

	fmt.Printf("%-10s %10s %8s %8s %6s %10s\n", "limit", "planned", "time", "slowdn", "lookup", "recomputes")
	var refTime time.Duration
	for _, frac := range []float64{1.0, 0.7, 0.5, 0.35, 0.25, 0} {
		cfgRun := cfg
		label := "none"
		if frac > 0 {
			limit := int64(frac * float64(ref))
			if limit < min {
				limit = min
			}
			cfgRun.MaxMem = limit
			label = memacct.FormatBytes(limit)
		} else {
			cfgRun.MaxMem = min
			label = "min"
		}
		start := time.Now()
		eng, err := placement.New(prep.Part, prep.Tree, cfgRun)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Place(prep.Queries); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if refTime == 0 {
			refTime = elapsed
		}
		st := eng.Stats()
		lookup := "on"
		if !st.LookupEnabled {
			lookup = "off"
		}
		fmt.Printf("%-10s %10s %8s %8.2f %6s %10d\n",
			label, memacct.FormatBytes(st.PlannedBytes), elapsed.Round(time.Millisecond),
			elapsed.Seconds()/refTime.Seconds(), lookup, st.CLVStats.Recomputes)
	}
	fmt.Println("\nNote the jump when 'lookup' flips off: that is the paper's Fig. 3 cliff —")
	fmt.Println("without the pre-placement table, every query must be scored against every")
	fmt.Println("branch through freshly recomputed CLVs, once per chunk.")
}
