// Custom replacement strategy: the paper exposes CLV eviction as a callback
// interface "that allow[s] the developer to fully customize how a slot is
// chosen/overwritten". This example implements such a custom strategy — a
// cost/recency hybrid — plugs it into the placement engine, and compares it
// against the built-ins on the same workload.
//
//	go run ./examples/custom-strategy
package main

import (
	"fmt"
	"log"
	"time"

	"phylomem/internal/core"
	"phylomem/internal/experiments"
	"phylomem/internal/placement"
	"phylomem/internal/workload"
)

// hybrid evicts the CLV with the lowest cost/recency score: cheap CLVs that
// have not been touched recently go first, expensive recently-used ones
// last. It demonstrates the full EvictionContext surface.
type hybrid struct{}

func (hybrid) Name() string { return "hybrid" }

func (hybrid) Victim(candidates []int, ctx *core.EvictionContext) int {
	best := candidates[0]
	bestScore := score(best, ctx)
	for _, c := range candidates[1:] {
		if s := score(c, ctx); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

func score(c int, ctx *core.EvictionContext) float64 {
	age := float64(ctx.Tick-ctx.LastAccess[c]) + 1
	return float64(ctx.Cost[c]) / age
}

func main() {
	ds, err := workload.ProRef(64, 5)
	if err != nil {
		log.Fatal(err)
	}
	prep, err := experiments.Prepare(ds)
	if err != nil {
		log.Fatal(err)
	}

	base := placement.DefaultConfig()
	base.ChunkSize = 25
	base.DisableLookup = true // maximize CLV traffic so strategies matter
	min := prep.MinFeasibleBytes(base)
	ref := prep.ReferenceBytes(base)
	base.MaxMem = min + (ref-min)/8 // a tight budget

	strategies := []core.Strategy{
		core.CostBased{}, core.LRU{}, core.FIFO{}, core.NewRandom(1), hybrid{},
	}
	fmt.Printf("%-8s %10s %12s %12s\n", "strategy", "time", "recomputes", "leaf-work")
	for _, s := range strategies {
		cfg := base
		cfg.Strategy = s
		start := time.Now()
		eng, err := placement.New(prep.Part, prep.Tree, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Place(prep.Queries); err != nil {
			log.Fatal(err)
		}
		st := eng.Stats().CLVStats
		fmt.Printf("%-8s %10s %12d %12d\n",
			s.Name(), time.Since(start).Round(time.Millisecond), st.Recomputes, st.RecomputeLeafWork)
	}
	fmt.Println("\nAll strategies produce identical placements — only the recomputation")
	fmt.Println("cost differs. The paper's future work calls for adaptive strategies;")
	fmt.Println("this interface is where they plug in.")
}
