// Quickstart: place two query sequences on a five-taxon reference tree and
// print the resulting jplace document.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"phylomem/internal/jplace"
	"phylomem/internal/model"
	"phylomem/internal/phylo"
	"phylomem/internal/placement"
	"phylomem/internal/seq"
	"phylomem/internal/tree"
)

func main() {
	// A fixed reference tree with five taxa.
	tr, err := tree.ParseNewick("((human:0.1,chimp:0.12):0.08,(mouse:0.3,rat:0.28):0.15,frog:0.6);")
	if err != nil {
		log.Fatal(err)
	}

	// The reference alignment, one sequence per leaf.
	msa, err := seq.NewMSA(seq.DNA, []seq.Sequence{
		{Label: "human", Data: []byte("ACGTACGTTGCAACGTGGCCAACTGACTGAAC")},
		{Label: "chimp", Data: []byte("ACGTACGTTGCAACGTGGCCAACTGACTGGAC")},
		{Label: "mouse", Data: []byte("ACGTTCGATGCAACGAGGCCTACTCACTGAAC")},
		{Label: "rat", Data: []byte("ACGTTCGATGCATCGAGGCCTACTCACTCAAC")},
		{Label: "frog", Data: []byte("TCGTTCGATGGAACGAGCCCTACACACTGTAC")},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Model: GTR with 4 discrete Gamma rate categories.
	gtr, err := model.GTR([]float64{0.26, 0.24, 0.25, 0.25}, []float64{1, 2.5, 0.8, 1.1, 3.0, 1})
	if err != nil {
		log.Fatal(err)
	}
	rates, err := model.GammaRates(1.0, 4)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := seq.Compress(msa)
	if err != nil {
		log.Fatal(err)
	}
	part, err := phylo.NewPartition(gtr, rates, comp, tr)
	if err != nil {
		log.Fatal(err)
	}

	// Queries aligned against the reference (gaps allowed).
	queries, err := placement.EncodeQueries(seq.DNA, []seq.Sequence{
		{Label: "query_primate", Data: []byte("ACGTACGTTGCAACGTGGCCAACTGACTGAAT")},
		{Label: "query_rodent_read", Data: []byte("--------TGCAACGAGGCCTACT--------")},
	}, msa.Width())
	if err != nil {
		log.Fatal(err)
	}

	// Default engine: memory unlimited, lookup-table heuristic on.
	eng, err := placement.New(part, tr, placement.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Place(queries)
	if err != nil {
		log.Fatal(err)
	}

	for _, q := range res.Queries {
		best := q.Placements[0]
		e := tr.Edges[best.EdgeNum]
		a, b := e.Nodes()
		fmt.Printf("%-18s -> edge %d (%s—%s), logL %.3f, LWR %.3f, pendant %.4f\n",
			q.Name, best.EdgeNum, nodeName(a), nodeName(b),
			best.LogLikelihood, best.LikeWeightRatio, best.PendantLength)
	}

	fmt.Println("\nfull jplace document:")
	doc := &jplace.Document{Tree: jplace.TreeString(tr), Queries: res.Queries, Invocation: "quickstart"}
	if err := jplace.Write(os.Stdout, doc); err != nil {
		log.Fatal(err)
	}
}

func nodeName(n *tree.Node) string {
	if n.Name != "" {
		return n.Name
	}
	return fmt.Sprintf("inner%d", n.ID)
}
