// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section (each delegating to internal/experiments, the
// PEWO-equivalent), plus micro-benchmarks of the kernels whose cost the
// memory/runtime trade-off is made of. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches use miniature datasets (scale 1/32 to 1/64, capped
// query sets) so a full -bench=. pass stays laptop-sized; cmd/pewo runs the
// same experiments at arbitrary scale.
package phylomem_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"phylomem/internal/core"
	"phylomem/internal/experiments"
	"phylomem/internal/model"
	"phylomem/internal/phylo"
	"phylomem/internal/placement"
	"phylomem/internal/seq"
	"phylomem/internal/tree"
	"phylomem/internal/workload"
)

// benchOptions returns miniature experiment options for benchmarks.
func benchOptions(scale int) experiments.Options {
	o := experiments.DefaultOptions(scale)
	o.Reps = 1
	o.Threads = []int{1, 2, 4}
	o.Fractions = []float64{0.8, 0.5, 0.3}
	o.MaxQueries = 80
	return o
}

func runExperiment(b *testing.B, name string, o experiments.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.ByName(name, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkTable1Datasets regenerates Table I (dataset synthesis cost).
func BenchmarkTable1Datasets(b *testing.B) { runExperiment(b, "table1", benchOptions(32)) }

// BenchmarkTable2 regenerates Table II (O/I/F absolute time and memory).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", benchOptions(64)) }

// BenchmarkFig3 regenerates Fig. 3 (memory fraction vs slowdown, large chunks)
// per dataset.
func BenchmarkFig3(b *testing.B) {
	for _, ds := range workload.Names() {
		b.Run(ds, func(b *testing.B) {
			o := benchOptions(64)
			o.Datasets = []string{ds}
			runExperiment(b, "fig3", o)
		})
	}
}

// BenchmarkFig4 regenerates Fig. 4 (the chunk-500 sweep) per dataset.
func BenchmarkFig4(b *testing.B) {
	for _, ds := range workload.Names() {
		b.Run(ds, func(b *testing.B) {
			o := benchOptions(64)
			o.Datasets = []string{ds}
			runExperiment(b, "fig4", o)
		})
	}
}

// BenchmarkFig5 regenerates Fig. 5 (EPA-NG vs pplacer showcase).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5", benchOptions(64)) }

// BenchmarkFig6 regenerates Fig. 6 (parallel efficiency, async precompute).
func BenchmarkFig6(b *testing.B) {
	o := benchOptions(64)
	o.Datasets = []string{"serratus"}
	runExperiment(b, "fig6", o)
}

// BenchmarkFig7 regenerates Fig. 7 (across-site synchronous precompute PE).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7", benchOptions(64)) }

// BenchmarkLookupSpeedup measures the pre-placement lookup table's effect
// (the paper's ≈15×/23× claims, Section II).
func BenchmarkLookupSpeedup(b *testing.B) {
	o := benchOptions(64)
	o.Datasets = []string{"neotrop"}
	runExperiment(b, "lookup", o)
}

// BenchmarkAblationStrategies compares CLV replacement strategies.
func BenchmarkAblationStrategies(b *testing.B) {
	o := benchOptions(64)
	o.Datasets = []string{"pro_ref"}
	o.MaxQueries = 40
	runExperiment(b, "ablation-strategies", o)
}

// BenchmarkAblationBlocks sweeps the branch-block size.
func BenchmarkAblationBlocks(b *testing.B) {
	o := benchOptions(64)
	o.Datasets = []string{"pro_ref"}
	o.MaxQueries = 40
	runExperiment(b, "ablation-blocks", o)
}

// --- kernel micro-benchmarks ---

type kernelFixture struct {
	tr   *tree.Tree
	part *phylo.Partition
	full *phylo.FullCLVSet
}

func newKernelFixture(b *testing.B, states, leaves, sites int) *kernelFixture {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tr, err := tree.Random(leaves, 0.1, rng)
	if err != nil {
		b.Fatal(err)
	}
	alphabet := seq.DNA
	chars := "ACGT"
	var m *model.Model
	if states == 20 {
		alphabet = seq.AA
		chars = "ARNDCQEGHILKMFPSTWYV"
		m = model.SyntheticAA()
	} else {
		m, err = model.GTR([]float64{0.26, 0.24, 0.25, 0.25}, []float64{1, 2.5, 0.8, 1.1, 3.0, 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	var seqs []seq.Sequence
	for _, leaf := range tr.Leaves() {
		data := make([]byte, sites)
		for i := range data {
			data[i] = chars[rng.Intn(len(chars))]
		}
		seqs = append(seqs, seq.Sequence{Label: leaf.Name, Data: data})
	}
	msa, err := seq.NewMSA(alphabet, seqs)
	if err != nil {
		b.Fatal(err)
	}
	comp, err := seq.Compress(msa)
	if err != nil {
		b.Fatal(err)
	}
	rates, err := model.GammaRates(1.0, 4)
	if err != nil {
		b.Fatal(err)
	}
	part, err := phylo.NewPartition(m, rates, comp, tr)
	if err != nil {
		b.Fatal(err)
	}
	full, err := phylo.ComputeFullCLVSet(part, tr, nil)
	if err != nil {
		b.Fatal(err)
	}
	return &kernelFixture{tr: tr, part: part, full: full}
}

// BenchmarkUpdateCLV measures the Felsenstein pruning step — the unit of
// the recomputation cost that AMC trades memory against.
func BenchmarkUpdateCLV(b *testing.B) {
	for _, tc := range []struct {
		name   string
		states int
		sites  int
	}{
		{"DNA-1000sites", 4, 1000},
		{"AA-1000sites", 20, 1000},
	} {
		b.Run(tc.name, func(b *testing.B) {
			fx := newKernelFixture(b, tc.states, 16, tc.sites)
			var inner tree.Dir = -1
			for i := 0; i < fx.tr.NumInnerCLVs(); i++ {
				d := fx.tr.DirOfCLV(i)
				a, c := fx.tr.Children(d)
				if !fx.tr.Tail(a).IsLeaf() && !fx.tr.Tail(c).IsLeaf() {
					inner = d
					break
				}
			}
			if inner < 0 {
				b.Fatal("no inner-inner op found")
			}
			a, c := fx.tr.Children(inner)
			dst := make([]float64, fx.part.CLVLen())
			scale := make([]int32, fx.part.ScaleLen())
			pa := make([]float64, fx.part.PLen())
			pb := make([]float64, fx.part.PLen())
			fx.part.FillP(pa, 0.1)
			fx.part.FillP(pb, 0.2)
			opA, opB := fx.full.Operand(a), fx.full.Operand(c)
			b.SetBytes(int64(fx.part.CLVLen()) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fx.part.UpdateCLV(dst, scale, opA, opB, pa, pb)
			}
		})
	}
}

// findKernelOp locates a directed inner CLV whose two children match the
// requested operand kinds (tip or inner), for kernel micro-benchmarks.
func findKernelOp(b *testing.B, fx *kernelFixture, tipA, tipB bool) (phylo.Operand, phylo.Operand) {
	b.Helper()
	for i := 0; i < fx.tr.NumInnerCLVs(); i++ {
		d := fx.tr.DirOfCLV(i)
		ca, cb := fx.tr.Children(d)
		la, lb := fx.tr.Tail(ca).IsLeaf(), fx.tr.Tail(cb).IsLeaf()
		if la == tipA && lb == tipB {
			return fx.full.Operand(ca), fx.full.Operand(cb)
		}
		if la == tipB && lb == tipA {
			return fx.full.Operand(cb), fx.full.Operand(ca)
		}
	}
	b.Fatalf("no op with children tipA=%v tipB=%v", tipA, tipB)
	return phylo.Operand{}, phylo.Operand{}
}

// BenchmarkKernelUpdateCLV compares the generic reference kernel against the
// specialized dispatch (kernels.go) per operand-kind combination. The
// specialized sub-benches report allocations to pin the zero-alloc contract.
func BenchmarkKernelUpdateCLV(b *testing.B) {
	for _, tc := range []struct {
		name       string
		states     int
		tipA, tipB bool
	}{
		{"DNA-tiptip", 4, true, true},
		{"DNA-tipinner", 4, true, false},
		{"DNA-innerinner", 4, false, false},
		{"AA-tipinner", 20, true, false},
		{"AA-innerinner", 20, false, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			fx := newKernelFixture(b, tc.states, 24, 1000)
			opA, opB := findKernelOp(b, fx, tc.tipA, tc.tipB)
			dst := make([]float64, fx.part.CLVLen())
			scale := make([]int32, fx.part.ScaleLen())
			pa := make([]float64, fx.part.PLen())
			pb := make([]float64, fx.part.PLen())
			fx.part.FillP(pa, 0.1)
			fx.part.FillP(pb, 0.2)
			b.Run("generic", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					fx.part.UpdateCLVGeneric(dst, scale, opA, opB, pa, pb)
				}
			})
			b.Run("specialized", func(b *testing.B) {
				fx.part.UpdateCLV(dst, scale, opA, opB, pa, pb) // warm the scratch pool
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fx.part.UpdateCLV(dst, scale, opA, opB, pa, pb)
				}
			})
		})
	}
}

// BenchmarkKernelEdgeLogLik compares the generic and 4-state-specialized
// edge log-likelihood evaluation (π-premultiplied accumulation, tip LUT).
func BenchmarkKernelEdgeLogLik(b *testing.B) {
	for _, tc := range []struct {
		name       string
		states     int
		tipA, tipB bool
	}{
		{"DNA-tipinner", 4, true, false},
		{"DNA-innerinner", 4, false, false},
		{"AA-innerinner", 20, false, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			fx := newKernelFixture(b, tc.states, 24, 1000)
			opA, opB := findKernelOp(b, fx, tc.tipA, tc.tipB)
			pm := make([]float64, fx.part.PLen())
			fx.part.FillP(pm, 0.15)
			b.Run("generic", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					fx.part.EdgeLogLikGeneric(opA, opB, pm)
				}
			})
			b.Run("specialized", func(b *testing.B) {
				fx.part.EdgeLogLik(opA, opB, pm) // warm the scratch pool
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fx.part.EdgeLogLik(opA, opB, pm)
				}
			})
		})
	}
}

// BenchmarkPrescoreQuery measures the lookup-table scoring path (phase 1
// with the memoization the paper's cliff is about).
func BenchmarkPrescoreQuery(b *testing.B) {
	fx := newKernelFixture(b, 4, 16, 2000)
	e := fx.tr.Edges[0]
	na, nb := e.Nodes()
	bclv := make([]float64, fx.part.CLVLen())
	bscale := make([]int32, fx.part.ScaleLen())
	pu := make([]float64, fx.part.PLen())
	pv := make([]float64, fx.part.PLen())
	fx.part.FillP(pu, e.Length/2)
	fx.part.FillP(pv, e.Length/2)
	fx.part.UpdateCLV(bclv, bscale, fx.full.Operand(fx.tr.DirOf(e, na)), fx.full.Operand(fx.tr.DirOf(e, nb)), pu, pv)
	ppend := make([]float64, fx.part.PLen())
	fx.part.FillP(ppend, 0.05)
	row := make([]float64, fx.part.PrescoreRowLen())
	fx.part.BuildPrescoreRow(row, bclv, ppend)
	rng := rand.New(rand.NewSource(2))
	q := make([]uint32, fx.part.Comp.OriginalWidth())
	for i := range q {
		q[i] = 1 << uint(rng.Intn(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.part.PrescoreQuery(row, bscale, q, true)
	}
}

// BenchmarkQueryLogLik measures the direct (no-lookup) scoring path.
func BenchmarkQueryLogLik(b *testing.B) {
	fx := newKernelFixture(b, 4, 16, 2000)
	e := fx.tr.Edges[0]
	na, nb := e.Nodes()
	bclv := make([]float64, fx.part.CLVLen())
	bscale := make([]int32, fx.part.ScaleLen())
	pu := make([]float64, fx.part.PLen())
	pv := make([]float64, fx.part.PLen())
	fx.part.FillP(pu, e.Length/2)
	fx.part.FillP(pv, e.Length/2)
	fx.part.UpdateCLV(bclv, bscale, fx.full.Operand(fx.tr.DirOf(e, na)), fx.full.Operand(fx.tr.DirOf(e, nb)), pu, pv)
	ppend := make([]float64, fx.part.PLen())
	fx.part.FillP(ppend, 0.05)
	rng := rand.New(rand.NewSource(2))
	q := make([]uint32, fx.part.Comp.OriginalWidth())
	for i := range q {
		q[i] = 1 << uint(rng.Intn(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.part.QueryLogLik(bclv, bscale, q, ppend, true)
	}
}

// BenchmarkManagerAcquire measures slot-managed CLV materialization under
// memory pressure (random access pattern, minimum+4 slots).
func BenchmarkManagerAcquire(b *testing.B) {
	fx := newKernelFixture(b, 4, 128, 200)
	mgr, err := core.NewManager(fx.part, fx.tr, core.Config{Slots: fx.tr.MinSlots() + 4})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := fx.tr.DirOfCLV(rng.Intn(fx.tr.NumInnerCLVs()))
		if _, err := mgr.Acquire(d); err != nil {
			b.Fatal(err)
		}
		mgr.Release(d)
	}
}

// BenchmarkPlace measures placement throughput at 1 and 4 worker threads
// (pipelined and synchronous), with the engine — including its lookup-table
// build — constructed outside the timed region. Reports queries/s.
func BenchmarkPlace(b *testing.B) {
	ds, err := workload.Neotrop(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := experiments.Prepare(ds)
	if err != nil {
		b.Fatal(err)
	}
	prep.Queries = prep.Queries[:80]
	for _, tc := range []struct {
		name    string
		threads int
		noPipe  bool
	}{
		{"threads-1", 1, false},
		{"threads-4", 4, false},
		{"threads-4-no-pipeline", 4, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := placement.DefaultConfig()
			cfg.ChunkSize = 20
			cfg.Threads = tc.threads
			cfg.NoPipeline = tc.noPipe
			eng, err := placement.New(prep.Part, prep.Tree, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Place(prep.Queries); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			qps := float64(len(prep.Queries)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/s")
		})
	}
}

// BenchmarkLookupBuild measures the parallel pre-placement lookup-table
// construction at 1 and 4 pool workers (the table is built inside
// placement.New; its wall time is reported from the engine's statistics).
func BenchmarkLookupBuild(b *testing.B) {
	ds, err := workload.Neotrop(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := experiments.Prepare(ds)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", threads), func(b *testing.B) {
			cfg := placement.DefaultConfig()
			cfg.Threads = threads
			var build time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := placement.New(prep.Part, prep.Tree, cfg)
				if err != nil {
					b.Fatal(err)
				}
				st := eng.Stats()
				if !st.LookupEnabled || st.LookupWorkers != threads {
					b.Fatalf("lookup enabled=%v workers=%d, want enabled at %d", st.LookupEnabled, st.LookupWorkers, threads)
				}
				build += st.LookupBuild
				eng.Close()
			}
			b.StopTimer()
			b.ReportMetric(build.Seconds()/float64(b.N), "lookup-s/op")
		})
	}
}

// BenchmarkEndToEndPlacement measures a whole miniature placement run in the
// reference mode and at the memory floor.
func BenchmarkEndToEndPlacement(b *testing.B) {
	ds, err := workload.Neotrop(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := experiments.Prepare(ds)
	if err != nil {
		b.Fatal(err)
	}
	prep.Queries = prep.Queries[:60]
	for _, mode := range []string{"reference", "memsave-floor"} {
		b.Run(mode, func(b *testing.B) {
			cfg := placement.DefaultConfig()
			cfg.ChunkSize = 30
			if mode == "memsave-floor" {
				cfg.MaxMem = prep.MinFeasibleBytes(cfg)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := placement.New(prep.Part, prep.Tree, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Place(prep.Queries); err != nil {
					b.Fatal(err)
				}
				eng.Close()
			}
		})
	}
}
